// Truncated Lennard-Jones 12-6 potential in reduced units (epsilon = sigma
// = 1), the standard mini-MD interaction and the one LAMMPS uses for the
// class of solids the paper's crack study models.
#pragma once

#include "md/atoms.h"
#include "md/cells.h"

namespace ioc::md {

struct LjParams {
  double epsilon = 1.0;
  double sigma = 1.0;
  double cutoff = 2.5;  ///< in units of sigma
};

struct ForceResult {
  double potential_energy = 0;
  double virial = 0;  ///< sum of r.f over pairs (pressure diagnostics)
};

class LjForce {
 public:
  explicit LjForce(LjParams p = LjParams{}) : p_(p) {}

  const LjParams& params() const { return p_; }

  /// Recompute forces into atoms.force (overwritten); returns energies.
  ForceResult compute(AtomData& atoms) const;

  /// Pair energy at squared distance r2 (unshifted, truncated).
  double pair_energy(double r2) const;

 private:
  LjParams p_;
};

/// Kinetic energy of the system (mass = 1).
double kinetic_energy(const AtomData& atoms);

/// Instantaneous temperature via equipartition: T = 2 KE / (3 N).
double temperature(const AtomData& atoms);

}  // namespace ioc::md
