#include "md/force_lj.h"

#include <algorithm>

#include "par/thread_pool.h"
#include "trace/kernel_span.h"

namespace ioc::md {

ForceResult LjForce::compute(AtomData& atoms) const {
  CellList cl(atoms.box, p_.cutoff * p_.sigma);
  return compute(atoms, cl, 1);  // update() inside builds the skinless list
}

ForceResult LjForce::compute(AtomData& atoms, CellList& cells,
                             unsigned threads,
                             trace::TraceSink* sink) const {
  const std::size_t n = atoms.size();
  trace::KernelSpan span(sink, "lj_force", threads, static_cast<double>(n));
  cells.update(atoms.box, atoms.pos);
  ForceResult res;
  for (auto& f : atoms.force) f = Vec3{};
  // The pair visitor hands the callback the displacement it already wrapped
  // for the cutoff test, so the force loop never recomputes min_image.
  // Below the grain threshold the whole kernel runs inline serial — same
  // code path as threads == 1, no dispatch, no accumulator merge.
  const unsigned eff = par::grain_limited_threads(threads, n);
  if (eff <= 1) {
    cells.for_each_pair(
        atoms.pos,
        [&](std::size_t i, std::size_t j, double r2, const Vec3& rij) {
          const LjPairTerms t = pair_terms(r2);
          const Vec3 f = rij * t.fmag_over_r;
          atoms.force[i] += f;
          atoms.force[j] -= f;
          res.potential_energy += t.energy;
          res.virial += rij.dot(f);
        });
    return res;
  }
  // Per-thread force accumulators: chunk c owns a disjoint slice of the
  // pair domain but touches arbitrary atoms, so each chunk sums into its
  // own array and the arrays merge below in fixed chunk order — the result
  // depends on the thread count, never on scheduling.
  struct Accum {
    std::vector<Vec3> force;
    double pe = 0;
    double virial = 0;
  };
  const std::size_t domain = cells.range_size();
  const unsigned chunks =
      static_cast<unsigned>(std::min<std::size_t>(eff, domain));
  std::vector<Accum> accums(chunks);
  par::parallel_for(
      chunks, domain, [&](std::size_t b, std::size_t e, unsigned c) {
        Accum& acc = accums[c];
        acc.force.assign(n, Vec3{});
        cells.for_each_pair_range(
            atoms.pos, b, e,
            [&](std::size_t i, std::size_t j, double r2, const Vec3& rij) {
              const LjPairTerms t = pair_terms(r2);
              const Vec3 f = rij * t.fmag_over_r;
              acc.force[i] += f;
              acc.force[j] -= f;
              acc.pe += t.energy;
              acc.virial += rij.dot(f);
            });
      });
  for (unsigned c = 0; c < chunks; ++c) {
    for (std::size_t i = 0; i < n; ++i) atoms.force[i] += accums[c].force[i];
    res.potential_energy += accums[c].pe;
    res.virial += accums[c].virial;
  }
  return res;
}

double kinetic_energy(const AtomData& atoms) {
  double ke = 0;
  for (const auto& v : atoms.vel) ke += 0.5 * v.norm2();
  return ke;
}

double temperature(const AtomData& atoms) {
  if (atoms.size() == 0) return 0;
  return 2.0 * kinetic_energy(atoms) / (3.0 * static_cast<double>(atoms.size()));
}

}  // namespace ioc::md
