#include "md/force_lj.h"

namespace ioc::md {

double LjForce::pair_energy(double r2) const {
  const double rc2 = p_.cutoff * p_.cutoff * p_.sigma * p_.sigma;
  if (r2 > rc2) return 0.0;
  const double s2 = p_.sigma * p_.sigma / r2;
  const double s6 = s2 * s2 * s2;
  return 4.0 * p_.epsilon * (s6 * s6 - s6);
}

ForceResult LjForce::compute(AtomData& atoms) const {
  ForceResult res;
  for (auto& f : atoms.force) f = Vec3{};
  CellList cl(atoms.box, p_.cutoff * p_.sigma);
  cl.build(atoms.pos);
  cl.for_each_pair(atoms.pos, [&](std::size_t i, std::size_t j, double r2) {
    const double s2 = p_.sigma * p_.sigma / r2;
    const double s6 = s2 * s2 * s2;
    // dU/dr / r = -24 eps (2 s12 - s6) / r^2
    const double fmag_over_r =
        24.0 * p_.epsilon * (2.0 * s6 * s6 - s6) / r2;
    const Vec3 rij = atoms.box.min_image(atoms.pos[i], atoms.pos[j]);
    const Vec3 f = rij * fmag_over_r;
    atoms.force[i] += f;
    atoms.force[j] -= f;
    res.potential_energy += 4.0 * p_.epsilon * (s6 * s6 - s6);
    res.virial += rij.dot(f);
  });
  return res;
}

double kinetic_energy(const AtomData& atoms) {
  double ke = 0;
  for (const auto& v : atoms.vel) ke += 0.5 * v.norm2();
  return ke;
}

double temperature(const AtomData& atoms) {
  if (atoms.size() == 0) return 0;
  return 2.0 * kinetic_energy(atoms) / (3.0 * static_cast<double>(atoms.size()));
}

}  // namespace ioc::md
