#include "dt/stream.h"

#include "util/hash.h"
#include "util/log.h"

namespace ioc::dt {

std::uint64_t step_checksum(const StepData& s, std::size_t payload_len) {
  std::uint64_t h = util::fnv1a_value(s.step);
  h = util::fnv1a_value(s.bytes, h);
  h = util::fnv1a_value(s.items, h);
  h = util::fnv1a_value(s.origin, h);
  if (s.payload != nullptr && payload_len > 0) {
    h = util::fnv1a(s.payload.get(), payload_len, h);
  }
  return h;
}

Stream::Stream(net::Network& net, net::NodeId writer_node, StreamConfig cfg)
    : net_(&net),
      writer_node_(writer_node),
      cfg_(cfg),
      readable_(net.cluster().sim()),
      writable_(net.cluster().sim()),
      drained_(net.cluster().sim()),
      pull_slot_(net.cluster().sim(), 1) {}

des::Task<bool> Stream::admit(StepData s,
                              std::shared_ptr<des::Event>* delivered) {
  auto& sim = net_->cluster().sim();
  const des::SimTime wait_start = sim.now();
  bool blocked = false;
  while (!closed_ && buffered_bytes_ + s.bytes > cfg_.buffer_capacity) {
    if (!blocked) {
      blocked = true;
      ++write_blocked_;
      IOC_DEBUG << "dt: writer buffer full (" << buffered_bytes_
                << " B), write of step " << s.step << " blocking";
    }
    co_await writable_.wait();
  }
  if (blocked) {
    --write_blocked_;
    total_block_seconds_ += des::to_seconds(sim.now() - wait_start);
  }
  if (closed_) co_return false;

  Entry e;
  e.data = std::move(s);
  e.data.ingress = sim.now();
  e.admitted = sim.now();
  e.delivered = std::make_shared<des::Event>(sim);
  if (delivered != nullptr) *delivered = e.delivered;
  buffered_bytes_ += e.data.bytes;
  queue_.push_back(std::move(e));
  backlog_hwm_ = std::max(backlog_hwm_, queue_.size());
  ++steps_written_;
  readable_.notify_all();
  co_return true;
}

des::Task<bool> Stream::write(StepData s) {
  co_return co_await admit(std::move(s), nullptr);
}

des::Task<bool> Stream::write_sync(StepData s) {
  std::shared_ptr<des::Event> delivered;
  bool ok = co_await admit(std::move(s), &delivered);
  if (!ok) co_return false;
  co_await delivered->wait();
  co_return true;
}

void Stream::close() {
  if (closed_) return;
  closed_ = true;
  readable_.notify_all();
  writable_.notify_all();
}

void Stream::finish_pull(const Entry& e) {
  auto& sim = net_->cluster().sim();
  buffered_bytes_ -= e.data.bytes;
  ++steps_delivered_;
  delivery_lat_.add(des::to_seconds(sim.now() - e.admitted));
  e.delivered->set();
  writable_.notify_all();
  --in_flight_;
  if (in_flight_ == 0 && pause_pending_) {
    pause_pending_ = false;
    paused_ = true;
    drained_.set();
  }
}

des::Task<std::optional<StepData>> Stream::read(net::NodeId reader_node,
                                                des::Event* cancel) {
  // Claim the next step, respecting pauses and cancellation.
  while (true) {
    if (cancel != nullptr && cancel->is_set()) co_return std::nullopt;
    if (!paused_ && !pause_pending_ && !queue_.empty()) break;
    if (closed_ && queue_.empty()) co_return std::nullopt;
    co_await readable_.wait();
  }
  Entry e = std::move(queue_.front());
  queue_.pop_front();
  ++in_flight_;

  // Metadata notification, then the (optionally scheduled) bulk pull.
  co_await net_->transfer(writer_node_, reader_node, cfg_.metadata_bytes);
  if (cfg_.scheduled_pulls) co_await pull_slot_.acquire();
  co_await net_->transfer(writer_node_, reader_node, e.data.bytes);
  if (cfg_.scheduled_pulls) pull_slot_.release();

  finish_pull(e);
  co_return std::move(e.data);
}

des::Task<void> Stream::pause() {
  if (paused_) co_return;
  if (in_flight_ == 0) {
    paused_ = true;
    co_return;
  }
  pause_pending_ = true;
  drained_.reset();
  co_await drained_.wait();
}

void Stream::resume() {
  if (!paused_ && !pause_pending_) return;
  paused_ = false;
  pause_pending_ = false;
  readable_.notify_all();
}

}  // namespace ioc::dt
