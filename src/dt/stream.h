// DataTap/DataStager-style staged transport. One Stream carries the output
// of one pipeline stage to the replicas of the next:
//
//   writer side              reader side (container replicas)
//   write(step) ──buffer──▶  metadata queue ──claim──▶ RDMA-style pull
//
// Key behaviours reproduced from the paper:
//  * asynchronous writes: write() buffers and returns; the application (or
//    upstream analytics) moves on to its next timestep while readers pull;
//  * reader-initiated pulls, optionally *scheduled* (serialized per stream)
//    the way DataStager schedules pulls to avoid interconnect contention;
//  * pause/drain/resume: a pause stops new deliveries and completes in-flight
//    pulls — the dominant cost of the container 'decrease' protocol (Fig. 5);
//  * bounded writer buffer: when it fills, write() blocks, which is exactly
//    the "application blocking" the container policies exist to prevent.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "des/event.h"
#include "des/process.h"
#include "des/semaphore.h"
#include "net/network.h"
#include "util/stats.h"

namespace ioc::dt {

/// One timestep's worth of output moving through the pipeline.
struct StepData {
  std::uint64_t step = 0;
  std::uint64_t bytes = 0;
  std::uint64_t items = 0;    ///< element count (atoms for the MD pipeline);
                              ///< analytics cost models scale with this
  des::SimTime created = 0;   ///< when this hop's writer emitted it
  des::SimTime origin = 0;    ///< when the simulation originally emitted the
                              ///< timestep (carried through every hop; the
                              ///< end-to-end latency baseline of Fig. 10)
  des::SimTime ingress = 0;   ///< set by the stream when the step entered
                              ///< this hop's writer buffer; container latency
                              ///< is measured from here to component exit
  std::uint64_t checksum = 0; ///< soft-error hash; 0 = not hashed
  std::shared_ptr<const void> payload;  ///< real data when examples carry it
};

/// Hash of a step's identifying fields (+ payload bytes when `payload_len`
/// is non-zero), used by the soft-error-detection control feature.
std::uint64_t step_checksum(const StepData& s, std::size_t payload_len = 0);

struct StreamConfig {
  std::uint64_t buffer_capacity = 2ull * 1024 * 1024 * 1024;  ///< writer side
  bool scheduled_pulls = true;   ///< DataStager pull scheduling on/off
  std::uint64_t metadata_bytes = 256;
};

class Stream {
 public:
  Stream(net::Network& net, net::NodeId writer_node, StreamConfig cfg = {});

  net::NodeId writer_node() const { return writer_node_; }

  // --- writer side ------------------------------------------------------
  /// Asynchronous write: blocks only while the writer buffer is full.
  /// Returns false if the stream closed before the step was admitted.
  des::Task<bool> write(StepData s);
  /// Synchronous write: additionally waits until the step has been pulled
  /// by a reader. Used by the async-vs-sync ablation.
  des::Task<bool> write_sync(StepData s);
  /// No more writes; readers drain what is buffered, then see end-of-stream.
  void close();
  bool closed() const { return closed_; }

  // --- reader side ------------------------------------------------------
  /// Claim the next undelivered step and pull it to `reader_node`. Returns
  /// nullopt at end-of-stream, or — when `cancel` is given — once the cancel
  /// event is set and no step has been claimed yet (the caller must kick()
  /// the stream after setting the event to wake blocked readers). Multiple
  /// replicas may call concurrently; steps are claimed in order, giving
  /// round-robin-by-availability.
  des::Task<std::optional<StepData>> read(net::NodeId reader_node,
                                          des::Event* cancel = nullptr);

  /// Wake readers blocked in read() so they can observe a cancel event.
  void kick() { readable_.notify_all(); }

  // --- control ----------------------------------------------------------
  /// Stop new deliveries and wait for in-flight pulls to drain.
  /// Writes continue to buffer during a pause (asynchronous upstream).
  des::Task<void> pause();
  void resume();
  bool paused() const { return paused_; }

  // --- observability ----------------------------------------------------
  std::uint64_t buffered_bytes() const { return buffered_bytes_; }
  std::size_t backlog() const { return queue_.size(); }      ///< undelivered steps
  std::size_t backlog_high_watermark() const { return backlog_hwm_; }
  std::uint64_t steps_written() const { return steps_written_; }
  std::uint64_t steps_delivered() const { return steps_delivered_; }
  bool write_blocked() const { return write_blocked_ > 0; }
  /// Total virtual time writes spent blocked on a full buffer (seconds).
  double total_block_seconds() const { return total_block_seconds_; }
  /// Per-delivery time from write admission to pull completion (seconds).
  const util::OnlineStats& delivery_latency() const { return delivery_lat_; }

 private:
  struct Entry {
    StepData data;
    des::SimTime admitted = 0;
    std::shared_ptr<des::Event> delivered;  // set once pulled (sync writes)
  };

  des::Task<bool> admit(StepData s, std::shared_ptr<des::Event>* delivered);
  void finish_pull(const Entry& e);

  net::Network* net_;
  net::NodeId writer_node_;
  StreamConfig cfg_;

  std::deque<Entry> queue_;
  std::uint64_t buffered_bytes_ = 0;
  bool closed_ = false;
  bool paused_ = false;
  bool pause_pending_ = false;
  int in_flight_ = 0;
  int write_blocked_ = 0;

  des::Condition readable_;   // new item / resume / close
  des::Condition writable_;   // space freed / close
  des::Event drained_;        // pause completion

  std::size_t backlog_hwm_ = 0;
  std::uint64_t steps_written_ = 0;
  std::uint64_t steps_delivered_ = 0;
  double total_block_seconds_ = 0;
  util::OnlineStats delivery_lat_;
  des::Semaphore pull_slot_;  // serializes pulls when scheduled_pulls
};

}  // namespace ioc::dt
