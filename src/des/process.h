// Coroutine "process" model for the DES, in the style of process-oriented
// simulation frameworks: a Process is a top-level actor driven by the
// Simulator's virtual clock; a Task<T> is a value-returning sub-coroutine
// awaited by a Process (or another Task) and resumed by symmetric transfer.
//
// Lifetime rules:
//  * Process handles are reference counted. The coroutine frame is destroyed
//    when it has finished AND no handle refers to it; a detached process
//    (all handles dropped) self-destroys when it runs to completion.
//  * A process abandoned while suspended (e.g. blocked on a queue when the
//    simulation ends) leaks its frame; cancellation is cooperative — close
//    the queue or set the stop Event it waits on.
//  * Task frames are owned by the Task object, which lives in the awaiting
//    coroutine's frame, so tasks never outlive their parent.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "des/frame_pool.h"
#include "des/simulator.h"

namespace ioc::des {

class Process;

namespace detail {

struct ProcessPromise;
using ProcessHandle = std::coroutine_handle<ProcessPromise>;

struct ProcessPromise : PooledFrame {
  Simulator* sim = nullptr;
  int refs = 0;
  bool started = false;
  bool finished = false;
  std::exception_ptr error;
  std::vector<std::coroutine_handle<>> joiners;

  Process get_return_object();
  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    bool await_suspend(ProcessHandle h) noexcept {
      auto& p = h.promise();
      p.finished = true;
      if (p.sim != nullptr) {
        for (auto j : p.joiners) p.sim->schedule_now(j);
      }
      p.joiners.clear();
      // With no outstanding handles, fall through the final suspend point,
      // which destroys the coroutine state.
      return p.refs > 0;
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }
  void return_void() {}
  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

/// Handle to a simulator-driven coroutine. Copyable (shared ownership of the
/// completion state); awaitable (join).
class Process {
 public:
  using promise_type = detail::ProcessPromise;

  Process() = default;
  explicit Process(detail::ProcessHandle h) : h_(h) {
    if (h_) ++h_.promise().refs;
  }
  Process(const Process& o) : h_(o.h_) {
    if (h_) ++h_.promise().refs;
  }
  Process(Process&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Process& operator=(Process o) noexcept {
    std::swap(h_, o.h_);
    return *this;
  }
  ~Process() { release(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return h_ && h_.promise().finished; }

  /// Register with a simulator and schedule the first resumption at now().
  void start(Simulator& sim) {
    assert(h_ && !h_.promise().started && "process already started");
    h_.promise().sim = &sim;
    h_.promise().started = true;
    sim.schedule_now(h_);
  }

  /// Re-raise the exception that terminated the process, if any.
  void rethrow_if_failed() const {
    if (h_ && h_.promise().error) std::rethrow_exception(h_.promise().error);
  }
  bool failed() const { return h_ && h_.promise().error != nullptr; }

  struct JoinAwaiter {
    detail::ProcessHandle h;
    bool await_ready() const noexcept { return !h || h.promise().finished; }
    void await_suspend(std::coroutine_handle<> j) const {
      h.promise().joiners.push_back(j);
    }
    void await_resume() const {
      if (h && h.promise().error) std::rethrow_exception(h.promise().error);
    }
  };
  JoinAwaiter operator co_await() const { return JoinAwaiter{h_}; }

 private:
  void release() {
    if (!h_) return;
    auto& p = h_.promise();
    --p.refs;
    if (p.refs == 0 && (p.finished || !p.started)) h_.destroy();
    h_ = {};
  }

  detail::ProcessHandle h_;
};

inline Process detail::ProcessPromise::get_return_object() {
  return Process(ProcessHandle::from_promise(*this));
}

/// Start a process on `sim`; keep the returned handle to join it, or drop it
/// to run detached.
inline Process spawn(Simulator& sim, Process p) {
  p.start(sim);
  return p;
}

/// Awaitable that suspends the current coroutine for a virtual duration.
/// Usage inside a process: `co_await delay(sim, 5 * kSecond);`
struct DelayAwaiter {
  Simulator* sim;
  SimTime duration;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    sim->schedule_in(duration, h);
  }
  void await_resume() const noexcept {}
};

inline DelayAwaiter delay(Simulator& sim, SimTime d) {
  assert(d >= 0);
  return DelayAwaiter{&sim, d};
}

namespace detail {

template <class T>
struct TaskPromiseStorage {
  std::optional<T> value;
  void return_value(T v) { value.emplace(std::move(v)); }
  T take() { return std::move(*value); }
};

template <>
struct TaskPromiseStorage<void> {
  void return_void() {}
  void take() {}
};

}  // namespace detail

/// Lazily-started, value-returning coroutine. Must be co_awaited exactly
/// once; completion resumes the awaiter via symmetric transfer (no simulator
/// event), so calling a Task is as cheap as a function call plus whatever
/// delays it awaits internally.
template <class T = void>
class [[nodiscard]] Task {
 public:
  // Pooled frames: tasks are spun up per bus post / control round, so their
  // frames come from the des::FramePool freelist instead of the heap.
  struct promise_type : detail::TaskPromiseStorage<T>, PooledFrame {
    std::coroutine_handle<> continuation;
    std::exception_ptr error;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) const noexcept {
        auto c = h.promise().continuation;
        return c ? c : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void unhandled_exception() { error = std::current_exception(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  struct Awaiter {
    std::coroutine_handle<promise_type> h;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) const {
      h.promise().continuation = cont;
      return h;  // start the child coroutine
    }
    T await_resume() const {
      if (h.promise().error) std::rethrow_exception(h.promise().error);
      return h.promise().take();
    }
  };
  Awaiter operator co_await() const {
    assert(h_ && "task already consumed or empty");
    return Awaiter{h_};
  }

 private:
  std::coroutine_handle<promise_type> h_;
};

}  // namespace ioc::des
