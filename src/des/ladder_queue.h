// Ladder queue: the event queue behind des::Simulator. A binary heap costs
// O(log n) per operation with a poor constant (every push/pop churns the
// comparator across scattered cache lines); at fleet scale — thousands of
// pipelines, hundreds of thousands of pending timers/heartbeats — the queue
// dominates control-plane time. The ladder structure (Tang & Goh, "Ladder
// queue: An O(1) priority queue structure for large-scale discrete event
// simulation") gives amortized O(1) push/pop by bucketing events by
// timestamp and only ever sorting one small bucket at a time.
//
// Three tiers, earliest to latest:
//   bottom_ : the committed next events, sorted descending by (t, seq) so
//             pop_back() is the minimum. At most ~one bucket's worth.
//             Deliberately a sorted vector, not a heap: most pushes in a
//             cascading simulation are near-"now" events that insert close
//             to the minimum end, where the insert memmove is a few
//             entries — measured faster than a heap's full-depth sifts on
//             both insert and every pop.
//   rungs_  : arrays of timestamp buckets. rungs_[k+1] refines one bucket of
//             rungs_[k] with a smaller bucket width, spawned lazily when a
//             bucket is too big to sort outright. Rung spans form a nested
//             chain, so routing a push is a walk from the deepest rung up.
//   top_    : unsorted staging for events at or beyond top_start_ (or any
//             event arriving while no rung exists). Spread into a fresh
//             rung, sized from its actual min/max, when everything earlier
//             has drained.
//
// Ordering contract (the one Simulator relies on for determinism): pops are
// strictly ordered by (t, seq) with seq the monotone scheduling sequence
// number — FIFO among equal timestamps. Every structural decision (bucket
// counts, widths, when to refine) is a pure function of the pushed
// (t, seq) values, so replay determinism survives the swap from the heap
// (DESIGN.md §15).
//
// T must expose `.t` (SimTime) and `.seq` (unique std::uint64_t).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "des/time.h"

namespace ioc::des {

template <class T>
class LadderQueue {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(T e) {
    ++size_;
    if (!bottom_.empty() && earlier(e, bottom_.front())) {
      // Earlier than the latest committed event: merge into bottom so the
      // pop order stays exact. bottom_ is small, the memmove is cheap.
      insert_bottom(std::move(e));
      return;
    }
    if (!rungs_.empty() && e.t < top_start_) {
      // Walk from the deepest (finest) rung up to the first whose span
      // covers e.t. Spans are nested, so a miss below the deepest span can
      // only mean "earlier than every pending bucket" — that goes to
      // bottom; a miss above means a shallower rung covers it.
      for (std::size_t r = rungs_.size(); r-- > 0;) {
        Rung& rung = rungs_[r];
        const SimTime span_end =
            rung.start + static_cast<SimTime>(rung.width) *
                             static_cast<SimTime>(rung.buckets.size());
        if (e.t >= span_end) continue;
        if (e.t >= rung.start) {
          const auto idx = static_cast<std::size_t>(
              (e.t - rung.start) / static_cast<SimTime>(rung.width));
          if (idx >= rung.cur) {
            rung.buckets[idx].push_back(std::move(e));
            return;
          }
          // Buckets before cur already drained (they are empty); the event
          // precedes everything still pending. Fall through to bottom.
        }
        break;
      }
      insert_bottom(std::move(e));
      return;
    }
    top_.push_back(std::move(e));
  }

  /// Smallest (t, seq) event; undefined when empty().
  const T& peek() {
    refill_bottom();
    return bottom_.back();
  }

  /// Timestamp of the next event; undefined when empty().
  SimTime min_time() {
    refill_bottom();
    return bottom_.back().t;
  }

  T pop() {
    refill_bottom();
    T e = std::move(bottom_.back());
    bottom_.pop_back();
    --size_;
    return e;
  }

  /// Pop the minimum into `out` if its timestamp is <= `deadline`; returns
  /// false (leaving the queue untouched) otherwise or when empty. Lets a
  /// bounded run loop pay for one refill per event instead of two
  /// (min_time() + pop()).
  bool pop_if_at_most(SimTime deadline, T& out) {
    refill_bottom();
    if (bottom_.empty() || bottom_.back().t > deadline) return false;
    out = std::move(bottom_.back());
    bottom_.pop_back();
    --size_;
    return true;
  }

 private:
  struct Rung {
    SimTime start = 0;
    std::uint64_t width = 1;       ///< bucket width in time units
    std::size_t cur = 0;           ///< buckets before this index are drained
    std::vector<std::vector<T>> buckets;
  };

  /// Sort a bucket only up to this size; bigger buckets spawn a finer rung
  /// first (unless the width is already 1 time unit or the depth cap hit,
  /// where sorting is the only option left).
  static constexpr std::size_t kSortThreshold = 64;
  static constexpr std::size_t kMaxBuckets = 4096;
  /// Widths at least halve per rung, so 48 rungs cover any int64 span; the
  /// cap only guards against pathological adversarial inputs.
  static constexpr std::size_t kMaxRungs = 48;

  static bool earlier(const T& a, const T& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }
  void insert_bottom(T e) {
    // bottom_ is descending; find the first element not after e.
    auto it = std::lower_bound(
        bottom_.begin(), bottom_.end(), e,
        [](const T& x, const T& v) { return earlier(v, x); });
    bottom_.insert(it, std::move(e));
  }

  void sort_into_bottom(std::vector<T>& events) {
    bottom_.swap(events);
    events.clear();
    std::sort(bottom_.begin(), bottom_.end(),
              [](const T& a, const T& b) { return earlier(b, a); });
  }

  /// Scatter `events` spanning [start, start + width) into a new finest
  /// rung. Bucket count and width depend only on the event count and span.
  void spawn_rung(std::vector<T>& events, SimTime start, std::uint64_t width) {
    Rung r;
    r.start = start;
    const std::uint64_t target =
        std::clamp<std::uint64_t>(events.size(), 2, kMaxBuckets);
    r.width = std::max<std::uint64_t>(1, (width + target - 1) / target);
    const std::uint64_t nbuckets = (width + r.width - 1) / r.width;
    r.buckets.assign(static_cast<std::size_t>(nbuckets), {});
    for (auto& e : events) {
      const auto idx = static_cast<std::size_t>(
          (e.t - start) / static_cast<SimTime>(r.width));
      r.buckets[idx].push_back(std::move(e));
    }
    events.clear();
    rungs_.push_back(std::move(r));
  }

  void spread_top() {
    SimTime tmin = top_.front().t;
    SimTime tmax = top_.front().t;
    for (const T& e : top_) {
      tmin = std::min(tmin, e.t);
      tmax = std::max(tmax, e.t);
    }
    top_start_ = tmax < std::numeric_limits<SimTime>::max() ? tmax + 1 : tmax;
    const auto span =
        static_cast<std::uint64_t>(tmax - tmin) + 1;  // >= 1, no overflow
    if (top_.size() <= kSortThreshold || span == 1) {
      // Small, or an equal-timestamp burst a rung cannot split further:
      // sort directly. Equal timestamps order by seq — FIFO preserved.
      sort_into_bottom(top_);
      return;
    }
    spawn_rung(top_, tmin, span);
  }

  void refill_bottom() {
    while (bottom_.empty()) {
      if (!rungs_.empty()) {
        Rung& rung = rungs_.back();
        // Re-check the current bucket first: it may have received pushes
        // since its last drain. Only advance past genuinely empty ones.
        while (rung.cur < rung.buckets.size() &&
               rung.buckets[rung.cur].empty()) {
          ++rung.cur;
        }
        if (rung.cur == rung.buckets.size()) {
          rungs_.pop_back();
          continue;
        }
        auto& bucket = rung.buckets[rung.cur];
        if (bucket.size() > kSortThreshold && rung.width >= 2 &&
            rungs_.size() < kMaxRungs) {
          // Too big to sort: refine. The new width is strictly smaller, so
          // refinement terminates (at width 1 a bucket holds one timestamp
          // and sorting is O(k log k) on seq only).
          const SimTime b_start =
              rung.start + static_cast<SimTime>(rung.cur) *
                               static_cast<SimTime>(rung.width);
          spawn_rung(bucket, b_start, rung.width);
          continue;
        }
        sort_into_bottom(bucket);
      } else if (!top_.empty()) {
        spread_top();
      } else {
        return;  // queue empty; callers check empty() first
      }
    }
  }

  std::vector<T> bottom_;    ///< sorted descending; pop_back() is the min
  std::vector<Rung> rungs_;  ///< nested refinements, coarsest first
  std::vector<T> top_;       ///< unsorted staging beyond top_start_
  SimTime top_start_ = std::numeric_limits<SimTime>::min();
  std::size_t size_ = 0;
};

}  // namespace ioc::des
