#include "des/simulator.h"

#include <cassert>
#include <cstdio>

#include "des/time.h"
#include "util/log.h"

namespace ioc::des {

namespace {
Simulator* g_log_sim = nullptr;
std::string log_time() {
  if (g_log_sim == nullptr) return "-";
  return format_time(g_log_sim->now());
}
}  // namespace

std::string format_time(SimTime t) {
  char buf[48];
  if (t >= kSecond || t <= -kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds(t));
  } else if (t >= kMillisecond || t <= -kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3fms",
                  static_cast<double>(t) / static_cast<double>(kMillisecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fus",
                  static_cast<double>(t) / static_cast<double>(kMicrosecond));
  }
  return buf;
}

Simulator::~Simulator() {
  // Drain without firing: pending callback nodes are owned by their entries.
  while (!queue_.empty()) {
    Entry e = queue_.pop();
    delete e.fn;
  }
}

void Simulator::call_at(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(
      Entry{t, next_seq_++, nullptr, new std::function<void()>(std::move(fn))});
}

Timer Simulator::timer_at(SimTime t, std::function<void()> fn) {
  auto armed = std::make_shared<bool>(true);
  call_at(t, [armed, fn = std::move(fn)] {
    if (!*armed) return;  // cancelled before firing
    *armed = false;
    fn();
  });
  return Timer(std::move(armed));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Entry e = queue_.pop();
  now_ = e.t;
  ++processed_;
  if (e.h) {
    e.h.resume();
  } else {
    (*e.fn)();
    delete e.fn;
  }
  return true;
}

SimTime Simulator::run() {
  while (step()) {
  }
  return now_;
}

SimTime Simulator::run_until(SimTime deadline) {
  // Fused check-and-pop: one queue refill serves both the deadline test and
  // the extraction, instead of min_time() + pop() each re-checking bottom.
  Entry e;
  while (queue_.pop_if_at_most(deadline, e)) {
    now_ = e.t;
    ++processed_;
    if (e.h) {
      e.h.resume();
    } else {
      (*e.fn)();
      delete e.fn;
    }
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

void Simulator::attach_logger() {
  g_log_sim = this;
  util::set_log_time_source(&log_time);
}

}  // namespace ioc::des
