#include "des/simulator.h"

#include <cassert>
#include <cstdio>

#include "des/time.h"
#include "util/log.h"

namespace ioc::des {

namespace {
Simulator* g_log_sim = nullptr;
std::string log_time() {
  if (g_log_sim == nullptr) return "-";
  return format_time(g_log_sim->now());
}
}  // namespace

std::string format_time(SimTime t) {
  char buf[48];
  if (t >= kSecond || t <= -kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds(t));
  } else if (t >= kMillisecond || t <= -kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3fms",
                  static_cast<double>(t) / static_cast<double>(kMillisecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fus",
                  static_cast<double>(t) / static_cast<double>(kMicrosecond));
  }
  return buf;
}

void Simulator::schedule_at(SimTime t, std::coroutine_handle<> h) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(Entry{t, next_seq_++, h, nullptr});
}

void Simulator::call_at(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(Entry{t, next_seq_++, nullptr, std::move(fn)});
}

Timer Simulator::timer_at(SimTime t, std::function<void()> fn) {
  auto armed = std::make_shared<bool>(true);
  call_at(t, [armed, fn = std::move(fn)] {
    if (!*armed) return;  // cancelled before firing
    *armed = false;
    fn();
  });
  return Timer(std::move(armed));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Entry e = queue_.pop();
  now_ = e.t;
  ++processed_;
  if (e.h) {
    e.h.resume();
  } else {
    e.fn();
  }
  return true;
}

SimTime Simulator::run() {
  while (step()) {
  }
  return now_;
}

SimTime Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.min_time() <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

void Simulator::attach_logger() {
  g_log_sim = this;
  util::set_log_time_source(&log_time);
}

}  // namespace ioc::des
