// Virtual time for the discrete-event simulator. Integer nanoseconds keep
// event ordering exact and runs bit-reproducible (no floating-point drift).
#pragma once

#include <cstdint>
#include <string>

namespace ioc::des {

/// Virtual simulation time / duration, in nanoseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Convert a duration in (possibly fractional) seconds to SimTime.
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

/// Convert SimTime to seconds as a double (for reporting only).
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Human-readable rendering, e.g. "12.345s" or "85.2ms".
std::string format_time(SimTime t);

}  // namespace ioc::des
