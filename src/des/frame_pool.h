// Size-bucketed freelist for coroutine frames. Every bus post / request /
// control round spins up a Task frame, and under the fleet bench that was
// one operator new + delete per simulated message; recycling frames through
// a thread-local pool makes the steady-state cost a pointer swap. Wired in
// via `static operator new/delete` on the Process and Task promise types
// (process.h) — sized deallocation routes frees back to the right bucket.
//
// Thread-local on purpose: each DES runs on one thread, and a pool per
// thread means no locks and no cross-thread frame traffic. Memory is
// returned to the system at thread exit.
#pragma once

#include <cstddef>
#include <new>

namespace ioc::des {

class FramePool {
 public:
  // Frames round up to 64-byte classes; anything above 4 KiB (deep frames
  // with big locals — none on the hot path) falls through to the heap.
  static constexpr std::size_t kClass = 64;
  static constexpr std::size_t kMaxBytes = 4096;
  static constexpr std::size_t kBuckets = kMaxBytes / kClass;

  static void* allocate(std::size_t n) {
    if (n == 0) n = 1;
    if (n > kMaxBytes) return ::operator new(n);
    const std::size_t b = bucket_of(n);
    FreeNode*& head = buckets()[b];
    if (head != nullptr) {
      FreeNode* p = head;
      head = p->next;
      return p;
    }
    return ::operator new((b + 1) * kClass);
  }

  static void deallocate(void* p, std::size_t n) {
    if (p == nullptr) return;
    if (n == 0) n = 1;
    if (n > kMaxBytes) {
      ::operator delete(p);
      return;
    }
    FreeNode* node = static_cast<FreeNode*>(p);
    FreeNode*& head = buckets()[bucket_of(n)];
    node->next = head;
    head = node;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static std::size_t bucket_of(std::size_t n) { return (n - 1) / kClass; }

  struct BucketArray {
    FreeNode* heads[kBuckets] = {};
    ~BucketArray() {
      for (FreeNode*& h : heads) {
        while (h != nullptr) {
          FreeNode* n = h->next;
          ::operator delete(h);
          h = n;
        }
      }
    }
    FreeNode*& operator[](std::size_t i) { return heads[i]; }
  };

  static BucketArray& buckets() {
    thread_local BucketArray a;
    return a;
  }
};

/// Mixin giving a promise_type pooled frame allocation. The compiler calls
/// these for the whole coroutine frame (promise + locals + bookkeeping).
struct PooledFrame {
  static void* operator new(std::size_t n) { return FramePool::allocate(n); }
  static void operator delete(void* p, std::size_t n) {
    FramePool::deallocate(p, n);
  }
};

}  // namespace ioc::des
