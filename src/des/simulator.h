// The discrete-event engine. A Simulator owns a virtual clock and a
// priority queue of pending events — a ladder queue (ladder_queue.h),
// amortized O(1) per event where the former binary heap paid O(log n);
// events are either coroutine resumptions (the Process machinery in
// process.h) or plain callbacks.
//
// Determinism: events at equal timestamps fire in scheduling order (a
// monotone sequence number breaks ties), so a given program produces the
// same trace on every run. The ladder queue pops in exactly that (t, seq)
// order — see DESIGN.md §15 for why every digest survived the swap.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "des/ladder_queue.h"
#include "des/time.h"

namespace ioc::des {

/// Handle to a scheduled callback that can be revoked before it fires.
/// Timers back every timeout in the control plane: a protocol round arms
/// one, and cancels it the moment the awaited reply arrives, so a stale
/// timeout can never terminate a later round (the D2T gather bug).
/// Default-constructed and moved-from handles are inert; cancel() after the
/// callback ran is a no-op.
class Timer {
 public:
  Timer() = default;

  /// Disarm: the callback will not run. Safe to call repeatedly, after the
  /// timer fired, or on an empty handle.
  void cancel() {
    if (armed_) *armed_ = false;
    armed_.reset();
  }
  /// True while the callback is still pending (not fired, not cancelled).
  bool armed() const { return armed_ != nullptr && *armed_; }

 private:
  friend class Simulator;
  explicit Timer(std::shared_ptr<bool> armed) : armed_(std::move(armed)) {}
  std::shared_ptr<bool> armed_;
};

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule a coroutine resumption at absolute time `t` (>= now()).
  /// Inline on purpose: this is the single hottest call in a soak (once per
  /// suspension), and out-of-line it costs a call per event.
  void schedule_at(SimTime t, std::coroutine_handle<> h) {
    assert(t >= now_ && "cannot schedule into the past");
    queue_.push(Entry{t, next_seq_++, h, nullptr});
  }
  /// Schedule a coroutine resumption after delay `d` (>= 0).
  void schedule_in(SimTime d, std::coroutine_handle<> h) {
    schedule_at(now_ + d, h);
  }
  /// Schedule a coroutine resumption at the current time, after all events
  /// already queued for the current time.
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now_, h); }

  /// Schedule a plain callback at absolute time `t`.
  void call_at(SimTime t, std::function<void()> fn);
  void call_in(SimTime d, std::function<void()> fn) {
    call_at(now_ + d, fn);
  }

  /// Like call_at, but returns a handle that cancels the callback.
  Timer timer_at(SimTime t, std::function<void()> fn);
  Timer timer_in(SimTime d, std::function<void()> fn) {
    return timer_at(now_ + d, std::move(fn));
  }

  /// Run until the event queue is empty. Returns the final clock value.
  SimTime run();
  /// Run until the clock would pass `deadline`; events at exactly `deadline`
  /// still execute. Returns the clock value when stopping.
  SimTime run_until(SimTime deadline);
  /// Execute one event. Returns false if the queue is empty.
  bool step();

  bool empty() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return processed_; }

  /// Install this simulator as the source of timestamps for IOC_LOG lines.
  void attach_logger();

 private:
  // Trivially copyable on purpose: the ladder queue shuffles entries through
  // vector inserts and sorts millions of times per soak, and a POD entry
  // turns those into memmoves. Callbacks (timers, rare next to coroutine
  // resumptions) go through an owned heap node instead of an inline
  // std::function, whose non-trivial move would poison the whole queue.
  struct Entry {
    SimTime t;
    std::uint64_t seq;
    std::coroutine_handle<> h;       // exactly one of h / fn is active
    std::function<void()>* fn;       // owned; freed after firing
  };
  static_assert(std::is_trivially_copyable_v<Entry>);

  LadderQueue<Entry> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace ioc::des
