// Broadcast condition flag. set() wakes everything waiting; wait() on an
// already-set event passes straight through. Used for pause/resume
// handshakes and cooperative stop signals.
#pragma once

#include <coroutine>
#include <vector>

#include "des/simulator.h"

namespace ioc::des {

class Event {
 public:
  explicit Event(Simulator& sim) : sim_(&sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sim_->schedule_now(h);
    waiters_.clear();
  }

  void reset() { set_ = false; }

  struct Awaiter {
    Event* e;
    bool await_ready() const noexcept { return e->set_; }
    void await_suspend(std::coroutine_handle<> h) const {
      e->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  Awaiter wait() { return Awaiter{this}; }

 private:
  Simulator* sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Condition-variable analogue: wait() always suspends until the next
/// notify_all(). Use in a predicate loop, exactly like std::condition_variable:
///   while (!pred()) co_await cond.wait();
class Condition {
 public:
  explicit Condition(Simulator& sim) : sim_(&sim) {}
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  void notify_all() {
    for (auto h : waiters_) sim_->schedule_now(h);
    waiters_.clear();
  }

  struct Awaiter {
    Condition* c;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      c->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{this}; }

  std::size_t waiting() const { return waiters_.size(); }

 private:
  Simulator* sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace ioc::des
