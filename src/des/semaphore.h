// Counting semaphore over the virtual clock; models contended resources
// such as a node's NIC (egress serialization) or a bounded worker pool.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>

#include "des/simulator.h"

namespace ioc::des {

class Semaphore {
 public:
  Semaphore(Simulator& sim, std::int64_t count)
      : sim_(&sim), count_(count) {
    assert(count >= 0);
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  std::int64_t available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }

  struct Awaiter {
    Semaphore* s;
    bool await_ready() const noexcept {
      if (s->count_ > 0) {
        --s->count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) const {
      s->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  /// Await one unit of the resource.
  Awaiter acquire() { return Awaiter{this}; }

  /// Return one unit; hands it directly to the oldest waiter if any.
  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->schedule_now(h);  // waiter resumes holding the unit
    } else {
      ++count_;
    }
  }

 private:
  Simulator* sim_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace ioc::des
