// Awaitable FIFO channel between processes. Bounded or unbounded; closing a
// queue lets pending puts fail and lets getters drain remaining items before
// observing end-of-stream (std::nullopt). The DataTap transport and the
// container service loops are built on this.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <optional>
#include <utility>

#include "des/simulator.h"
#include "util/ring_deque.h"

namespace ioc::des {

template <class T>
class Queue {
 public:
  /// capacity == 0 means unbounded.
  explicit Queue(Simulator& sim, std::size_t capacity = 0)
      : sim_(&sim), capacity_(capacity) {}
  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool bounded() const { return capacity_ > 0; }
  bool closed() const { return closed_; }
  bool full() const { return bounded() && items_.size() >= capacity_; }

  /// Lifetime statistics, used for overflow detection and reporting.
  std::size_t high_watermark() const { return high_watermark_; }
  std::uint64_t total_put() const { return total_put_; }
  std::uint64_t total_got() const { return total_got_; }

  /// Non-blocking put; false if the queue is full or closed.
  bool try_put(T v) {
    if (closed_ || full()) return false;
    push(std::move(v));
    pump();
    return true;
  }

  struct GetAwaiter {
    Queue* q;
    std::optional<T> slot;
    bool ready_closed = false;

    bool await_ready() {
      if (!q->items_.empty()) {
        slot.emplace(std::move(q->items_.front()));
        q->items_.pop_front();
        ++q->total_got_;
        q->pump();  // space may admit a waiting putter
        return true;
      }
      if (q->closed_) {
        ready_closed = true;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      q->getters_.push_back({h, this});
    }
    std::optional<T> await_resume() {
      if (slot.has_value()) {
        return std::move(slot);
      }
      return std::nullopt;  // closed and drained
    }
  };

  /// Await the next item; std::nullopt once the queue is closed and drained.
  GetAwaiter get() { return GetAwaiter{this, std::nullopt, false}; }

  /// Non-blocking get.
  std::optional<T> try_get() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    ++total_got_;
    pump();
    return v;
  }

  struct PutAwaiter {
    Queue* q;
    T item;
    bool accepted = false;
    bool consumed = false;  // item moved into the queue

    bool await_ready() {
      if (q->closed_) return true;  // accepted stays false
      if (!q->full()) {
        q->push(std::move(item));
        consumed = true;
        accepted = true;
        q->pump();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      q->putters_.push_back({h, this});
    }
    bool await_resume() { return accepted; }
  };

  /// Await space and enqueue; resolves false if the queue was closed first.
  PutAwaiter put(T v) { return PutAwaiter{this, std::move(v), false, false}; }

  /// Close the queue: pending and future puts fail; getters drain what is
  /// buffered and then observe std::nullopt.
  void close() {
    if (closed_) return;
    closed_ = true;
    putters_.for_each(
        [this](PutWaiter& w) { sim_->schedule_now(w.h); });  // accepted == false
    putters_.clear();
    // Wake getters only if nothing is left to deliver; otherwise they will
    // drain buffered items first via pump() as usual.
    pump();
    if (items_.empty()) {
      getters_.for_each(
          [this](GetWaiter& w) { sim_->schedule_now(w.h); });  // -> nullopt
      getters_.clear();
    }
  }

 private:
  struct GetWaiter {
    std::coroutine_handle<> h;
    GetAwaiter* aw;
  };
  struct PutWaiter {
    std::coroutine_handle<> h;
    PutAwaiter* aw;
  };

  void push(T v) {
    items_.push_back(std::move(v));
    ++total_put_;
    high_watermark_ = std::max(high_watermark_, items_.size());
  }

  /// Match buffered items with waiting getters and free space with waiting
  /// putters until no more progress is possible.
  void pump() {
    bool progress = true;
    while (progress) {
      progress = false;
      while (!getters_.empty() && !items_.empty()) {
        GetWaiter w = getters_.front();
        getters_.pop_front();
        w.aw->slot.emplace(std::move(items_.front()));
        items_.pop_front();
        ++total_got_;
        sim_->schedule_now(w.h);
        progress = true;
      }
      while (!putters_.empty() && !closed_ && !full()) {
        PutWaiter w = putters_.front();
        putters_.pop_front();
        push(std::move(w.aw->item));
        w.aw->consumed = true;
        w.aw->accepted = true;
        sim_->schedule_now(w.h);
        progress = true;
      }
    }
    if (closed_ && items_.empty() && !getters_.empty()) {
      getters_.for_each([this](GetWaiter& w) { sim_->schedule_now(w.h); });
      getters_.clear();
    }
  }

  // Ring buffers instead of std::deque: a deque allocates/frees ~512-byte
  // node blocks as messages flow through, which was measurable heap churn
  // per delivery; the rings hit their high-watermark size once and then
  // recycle in place (util/ring_deque.h).
  Simulator* sim_;
  std::size_t capacity_;
  util::RingDeque<T> items_;
  util::RingDeque<GetWaiter> getters_;
  util::RingDeque<PutWaiter> putters_;
  bool closed_ = false;
  std::size_t high_watermark_ = 0;
  std::uint64_t total_put_ = 0;
  std::uint64_t total_got_ = 0;
};

}  // namespace ioc::des
