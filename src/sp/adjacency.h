// Compressed sparse adjacency (bond graph) produced by the Bonds component
// and consumed by CSym reference checks and CNA.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace ioc::sp {

class Adjacency {
 public:
  Adjacency() = default;

  static Adjacency from_lists(
      const std::vector<std::vector<std::uint32_t>>& lists) {
    Adjacency a;
    a.offsets_.clear();
    a.offsets_.reserve(lists.size() + 1);
    a.offsets_.push_back(0);
    for (const auto& l : lists) {
      std::vector<std::uint32_t> sorted(l);
      std::sort(sorted.begin(), sorted.end());
      a.neighbors_.insert(a.neighbors_.end(), sorted.begin(), sorted.end());
      a.offsets_.push_back(static_cast<std::uint32_t>(a.neighbors_.size()));
    }
    return a;
  }

  /// Adopt an already-built CSR (e.g. md::CellList::neighbor_csr) without
  /// copying: offsets must have n+1 entries starting at 0, and each row
  /// [offsets[i], offsets[i+1]) must be sorted ascending for bonded()'s
  /// binary search.
  static Adjacency from_csr(std::vector<std::uint32_t> offsets,
                            std::vector<std::uint32_t> neighbors) {
    Adjacency a;
    if (!offsets.empty()) a.offsets_ = std::move(offsets);
    a.neighbors_ = std::move(neighbors);
    return a;
  }

  std::size_t size() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  std::span<const std::uint32_t> neighbors_of(std::size_t i) const {
    return {neighbors_.data() + offsets_[i],
            neighbors_.data() + offsets_[i + 1]};
  }

  std::size_t degree(std::size_t i) const {
    return offsets_[i + 1] - offsets_[i];
  }

  bool bonded(std::uint32_t i, std::uint32_t j) const {
    auto n = neighbors_of(i);
    return std::binary_search(n.begin(), n.end(), j);
  }

  /// Undirected bond count (each bond stored in both directions).
  std::uint64_t bond_count() const { return neighbors_.size() / 2; }

  bool operator==(const Adjacency& o) const = default;

 private:
  std::vector<std::uint32_t> offsets_{0};
  std::vector<std::uint32_t> neighbors_;
};

}  // namespace ioc::sp
