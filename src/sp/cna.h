// Common Neighbor Analysis (CNA): the expensive structural-labeling stage
// of the SmartPointer pipeline. For every bonded pair it computes the
// classic (ncn, nb, lcb) signature — number of common neighbors, bonds
// among them, and the longest bond chain — and classifies each atom's local
// crystal structure (FCC / HCP / BCC / other). The paper starts this stage
// only after CSym confirms a break, because of its cost.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "md/atoms.h"
#include "sp/adjacency.h"
#include "trace/sink.h"

namespace ioc::sp {

enum class CnaLabel : std::uint8_t { kOther = 0, kFcc, kHcp, kBcc };
const char* cna_label_name(CnaLabel l);

struct CnaSignature {
  int common = 0;       ///< ncn: common neighbors of the pair
  int bonds = 0;        ///< nb: bonds among the common neighbors
  int longest_chain = 0;///< lcb: longest continuous bond chain
  bool operator==(const CnaSignature&) const = default;
};

struct CnaConfig {
  /// Neighbor cutoff. For FCC the conventional choice lies midway between
  /// the first and second shells: (1/sqrt(2) + 1)/2 * a = 0.854 a.
  double cutoff = 1.32;
  /// Worker threads. Labels are per-atom independent, so any thread count
  /// produces identical labels; <= 1 runs inline on the caller.
  unsigned threads = 1;
  /// Optional sink for kernel.compute spans (not owned).
  trace::TraceSink* sink = nullptr;
};

struct CnaResult {
  std::vector<CnaLabel> labels;
  std::size_t count(CnaLabel l) const {
    std::size_t n = 0;
    for (auto v : labels) {
      if (v == l) ++n;
    }
    return n;
  }
};

class CommonNeighborAnalysis {
 public:
  explicit CommonNeighborAnalysis(CnaConfig cfg = CnaConfig{}) : cfg_(cfg) {}

  const CnaConfig& config() const { return cfg_; }

  /// Classify all atoms.
  CnaResult classify(const md::AtomData& atoms) const;
  /// Classify only a subset (the crack region), against full neighborhoods.
  /// Subset entries must be distinct (BreakDetector::region emits them so);
  /// duplicates would make concurrent label writes race.
  CnaResult classify_subset(const md::AtomData& atoms,
                            const std::vector<std::uint32_t>& subset) const;

  /// Signature of one bonded pair within an adjacency graph (exposed for
  /// tests and for downstream tools that want raw signatures).
  static CnaSignature pair_signature(const Adjacency& adj, std::uint32_t i,
                                     std::uint32_t j);

 private:
  CnaLabel label_atom(const Adjacency& adj, std::uint32_t i) const;

  CnaConfig cfg_;
};

}  // namespace ioc::sp
