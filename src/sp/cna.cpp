#include "sp/cna.h"

#include <algorithm>

#include "md/cells.h"
#include "par/thread_pool.h"
#include "trace/kernel_span.h"

namespace ioc::sp {

const char* cna_label_name(CnaLabel l) {
  switch (l) {
    case CnaLabel::kOther: return "other";
    case CnaLabel::kFcc: return "fcc";
    case CnaLabel::kHcp: return "hcp";
    case CnaLabel::kBcc: return "bcc";
  }
  return "?";
}

namespace {

/// Longest simple path (in edges) in a small undirected graph given as an
/// adjacency matrix over `n` vertices. Exhaustive DFS — CNA common-neighbor
/// sets are tiny (<= 6 for the structures of interest).
int longest_chain(const std::vector<std::vector<bool>>& adj, int n) {
  int best = 0;
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  // Iterative DFS with explicit recursion via lambda.
  auto dfs = [&](auto&& self, int v, int len) -> void {
    best = std::max(best, len);
    for (int w = 0; w < n; ++w) {
      if (!used[static_cast<std::size_t>(w)] &&
          adj[static_cast<std::size_t>(v)][static_cast<std::size_t>(w)]) {
        used[static_cast<std::size_t>(w)] = true;
        self(self, w, len + 1);
        used[static_cast<std::size_t>(w)] = false;
      }
    }
  };
  for (int v = 0; v < n; ++v) {
    used[static_cast<std::size_t>(v)] = true;
    dfs(dfs, v, 0);
    used[static_cast<std::size_t>(v)] = false;
  }
  return best;
}

}  // namespace

CnaSignature CommonNeighborAnalysis::pair_signature(const Adjacency& adj,
                                                    std::uint32_t i,
                                                    std::uint32_t j) {
  CnaSignature sig;
  auto ni = adj.neighbors_of(i);
  auto nj = adj.neighbors_of(j);
  std::vector<std::uint32_t> common;
  std::set_intersection(ni.begin(), ni.end(), nj.begin(), nj.end(),
                        std::back_inserter(common));
  // The pair atoms themselves are excluded by construction (no self-bonds).
  sig.common = static_cast<int>(common.size());
  const int n = sig.common;
  std::vector<std::vector<bool>> sub(
      static_cast<std::size_t>(n),
      std::vector<bool>(static_cast<std::size_t>(n), false));
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (adj.bonded(common[static_cast<std::size_t>(a)],
                     common[static_cast<std::size_t>(b)])) {
        sub[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = true;
        sub[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = true;
        ++sig.bonds;
      }
    }
  }
  sig.longest_chain = longest_chain(sub, n);
  return sig;
}

CnaLabel CommonNeighborAnalysis::label_atom(const Adjacency& adj,
                                            std::uint32_t i) const {
  const auto neigh = adj.neighbors_of(i);
  const std::size_t deg = neigh.size();
  if (deg == 12) {
    int n421 = 0, n422 = 0;
    for (std::uint32_t j : neigh) {
      const CnaSignature s = pair_signature(adj, i, j);
      if (s == CnaSignature{4, 2, 1}) {
        ++n421;
      } else if (s == CnaSignature{4, 2, 2}) {
        ++n422;
      }
    }
    if (n421 == 12) return CnaLabel::kFcc;
    if (n421 == 6 && n422 == 6) return CnaLabel::kHcp;
    return CnaLabel::kOther;
  }
  if (deg == 14) {
    int n666 = 0, n444 = 0;
    for (std::uint32_t j : neigh) {
      const CnaSignature s = pair_signature(adj, i, j);
      if (s == CnaSignature{6, 6, 6}) {
        ++n666;
      } else if (s == CnaSignature{4, 4, 4}) {
        ++n444;
      }
    }
    if (n666 == 8 && n444 == 6) return CnaLabel::kBcc;
  }
  return CnaLabel::kOther;
}

CnaResult CommonNeighborAnalysis::classify(const md::AtomData& atoms) const {
  std::vector<std::uint32_t> all(atoms.size());
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    all[i] = static_cast<std::uint32_t>(i);
  }
  return classify_subset(atoms, all);
}

CnaResult CommonNeighborAnalysis::classify_subset(
    const md::AtomData& atoms,
    const std::vector<std::uint32_t>& subset) const {
  trace::KernelSpan span(cfg_.sink, "cna", cfg_.threads,
                         static_cast<double>(subset.size()));
  md::CellList cl(atoms.box, cfg_.cutoff);
  cl.build(atoms.pos);
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> neighbors;
  cl.neighbor_csr(atoms.pos, cfg_.threads, &offsets, &neighbors);
  const Adjacency adj =
      Adjacency::from_csr(std::move(offsets), std::move(neighbors));

  CnaResult res;
  res.labels.assign(atoms.size(), CnaLabel::kOther);
  // Each subset entry is labeled independently against the shared read-only
  // adjacency; identical labels at any thread count. Small subsets run
  // inline serial (grain clamp) rather than paying pool dispatch.
  par::parallel_for(par::grain_limited_threads(cfg_.threads, subset.size()),
                    subset.size(),
                    [&](std::size_t lo, std::size_t hi, unsigned) {
                      for (std::size_t s = lo; s < hi; ++s) {
                        res.labels[subset[s]] = label_atom(adj, subset[s]);
                      }
                    });
  return res;
}

}  // namespace ioc::sp
