// LAMMPS Helper: the aggregation tree that accepts the parallel simulation's
// per-rank output chunks and assembles the global atom set the downstream
// analytics consume (Table I: O(n), Tree compute model, no branching).
#pragma once

#include <cstddef>
#include <vector>

#include "md/atoms.h"

namespace ioc::sp {

class AggregationTree {
 public:
  explicit AggregationTree(std::size_t fanin = 2);

  std::size_t fanin() const { return fanin_; }

  /// Tree depth needed to combine `leaves` inputs.
  std::size_t depth_for(std::size_t leaves) const;

  /// Combine per-rank chunks into one AtomData. All chunks must share the
  /// same box; atom order is chunk order (stable).
  md::AtomData aggregate(const std::vector<md::AtomData>& chunks) const;

  /// Split an atom set into `parts` contiguous chunks (the inverse, used by
  /// tests and by the example that emulates parallel ranks).
  static std::vector<md::AtomData> scatter(const md::AtomData& atoms,
                                           std::size_t parts);

 private:
  std::size_t fanin_;
};

}  // namespace ioc::sp
