#include "sp/fragments.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "par/thread_pool.h"
#include "trace/kernel_span.h"

namespace ioc::sp {

namespace {

/// Plain union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

}  // namespace

const Fragment* FragmentSet::find(std::uint32_t id) const {
  for (const auto& f : fragments) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

FragmentSet find_fragments(const md::AtomData& atoms, const Adjacency& bonds,
                           unsigned threads, trace::TraceSink* sink) {
  const std::size_t n = atoms.size();
  trace::KernelSpan span(sink, "fragments", threads, static_cast<double>(n));
  UnionFind uf(n);
  // Canonical ids make every thread count equivalent, so clamping small
  // inputs to the serial bond pass changes latency, not results.
  threads = par::grain_limited_threads(threads, n);
  if (threads <= 1 || n < 2) {
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j : bonds.neighbors_of(i)) {
        if (j > i) uf.unite(i, j);
      }
    }
  } else {
    // Parallel bond pass: each chunk runs the edges of its atom range
    // through a private union-find (no shared writes), then the partial
    // forests fold into `uf` in chunk order. Components — and, because ids
    // are canonicalized below, the final FragmentSet — match the serial
    // pass for every thread count.
    const unsigned chunks =
        static_cast<unsigned>(std::min<std::size_t>(threads, n));
    std::vector<UnionFind> partial(chunks, UnionFind(n));
    par::parallel_for(chunks, n, [&](std::size_t b, std::size_t e,
                                     unsigned c) {
      UnionFind& local = partial[c];
      for (std::size_t i = b; i < e; ++i) {
        for (std::uint32_t j : bonds.neighbors_of(static_cast<std::uint32_t>(i))) {
          if (j > i) local.unite(static_cast<std::uint32_t>(i), j);
        }
      }
    });
    for (unsigned c = 0; c < chunks; ++c) {
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t r = partial[c].find(i);
        if (r != i) uf.unite(i, r);
      }
    }
  }
  std::map<std::uint32_t, std::vector<std::uint32_t>> roots;
  for (std::uint32_t i = 0; i < n; ++i) {
    roots[uf.find(i)].push_back(i);
  }
  // Canonical ordering: components sorted by their smallest atom index
  // (members are ascending, so that is the front). Root values depend on
  // union order — and therefore on the thread count — but this ordering
  // does not.
  std::vector<std::vector<std::uint32_t>> components;
  components.reserve(roots.size());
  for (auto& [root, members] : roots) components.push_back(std::move(members));
  std::sort(components.begin(), components.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });

  FragmentSet set;
  set.atom_fragment.assign(n, 0);
  std::uint32_t next = 0;
  for (auto& members : components) {
    Fragment f;
    f.id = next++;
    f.atoms = std::move(members);
    // Centroid via minimum-image offsets from the first member, so a
    // fragment wrapped around the periodic boundary is not smeared.
    const md::Vec3 anchor = atoms.pos[f.atoms.front()];
    md::Vec3 sum{};
    for (std::uint32_t idx : f.atoms) {
      sum += atoms.box.min_image(atoms.pos[idx], anchor);
    }
    f.centroid =
        atoms.box.wrap(anchor + sum * (1.0 / static_cast<double>(f.size())));
    for (std::uint32_t idx : f.atoms) set.atom_fragment[idx] = f.id;
    set.fragments.push_back(std::move(f));
  }
  std::sort(set.fragments.begin(), set.fragments.end(),
            [](const Fragment& a, const Fragment& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.id < b.id;
            });
  return set;
}

const char* fragment_event_name(FragmentEvent::Kind k) {
  switch (k) {
    case FragmentEvent::Kind::kContinued: return "continued";
    case FragmentEvent::Kind::kSplit: return "split";
    case FragmentEvent::Kind::kMerged: return "merged";
    case FragmentEvent::Kind::kAppeared: return "appeared";
    case FragmentEvent::Kind::kVanished: return "vanished";
  }
  return "?";
}

std::vector<FragmentEvent> FragmentTracker::track(const md::AtomData& atoms,
                                                  FragmentSet& current) {
  ++steps_;
  std::vector<FragmentEvent> events;

  // For each current fragment, tally which previous tracking ids its atoms
  // came from.
  struct Match {
    std::map<std::uint32_t, std::size_t> votes;  // prev id -> atom count
    std::size_t unmatched = 0;
  };
  std::vector<Match> matches(current.count());
  for (std::size_t fi = 0; fi < current.count(); ++fi) {
    for (std::uint32_t idx : current.fragments[fi].atoms) {
      auto it = prev_membership_.find(atoms.id[idx]);
      if (it == prev_membership_.end()) {
        ++matches[fi].unmatched;
      } else {
        ++matches[fi].votes[it->second];
      }
    }
  }

  // Assign stable ids: the previous fragment contributing the most atoms
  // claims the id; ties and leftovers get fresh ids. Track how many current
  // fragments each previous id feeds (for split detection) and how many
  // previous ids each current fragment absorbed (merge detection).
  std::map<std::uint32_t, std::vector<std::size_t>> prev_to_curr;
  std::set<std::uint32_t> claimed;
  for (std::size_t fi = 0; fi < current.count(); ++fi) {
    std::uint32_t best = 0;
    std::size_t best_votes = 0;
    for (const auto& [pid, v] : matches[fi].votes) {
      prev_to_curr[pid].push_back(fi);
      if (v > best_votes || (v == best_votes && pid < best)) {
        best = pid;
        best_votes = v;
      }
    }
    FragmentEvent ev;
    if (best_votes == 0) {
      current.fragments[fi].id = next_id_++;
      ev.kind = FragmentEvent::Kind::kAppeared;
    } else if (claimed.insert(best).second) {
      current.fragments[fi].id = best;
      ev.kind = matches[fi].votes.size() > 1
                    ? FragmentEvent::Kind::kMerged
                    : FragmentEvent::Kind::kContinued;
      for (const auto& [pid, v] : matches[fi].votes) ev.parents.push_back(pid);
    } else {
      // The majority parent was already claimed: this is a split shard.
      current.fragments[fi].id = next_id_++;
      ev.kind = FragmentEvent::Kind::kSplit;
      ev.parents.push_back(best);
    }
    ev.id = current.fragments[fi].id;
    if (steps_ > 1 && ev.kind != FragmentEvent::Kind::kContinued) {
      events.push_back(std::move(ev));
    }
  }

  // Previous fragments with no descendant vanished.
  if (steps_ > 1) {
    std::set<std::uint32_t> prev_ids;
    for (const auto& [aid, pid] : prev_membership_) prev_ids.insert(pid);
    for (std::uint32_t pid : prev_ids) {
      if (prev_to_curr.find(pid) == prev_to_curr.end()) {
        FragmentEvent ev;
        ev.kind = FragmentEvent::Kind::kVanished;
        ev.id = pid;
        events.push_back(std::move(ev));
      }
    }
  }

  // Refresh membership for the next step.
  prev_membership_.clear();
  for (const auto& f : current.fragments) {
    for (std::uint32_t idx : f.atoms) {
      prev_membership_[atoms.id[idx]] = f.id;
    }
    next_id_ = std::max(next_id_, f.id + 1);
  }
  // Rebuild the atom->fragment map with the stable ids.
  for (const auto& f : current.fragments) {
    for (std::uint32_t idx : f.atoms) current.atom_fragment[idx] = f.id;
  }
  return events;
}

}  // namespace ioc::sp
