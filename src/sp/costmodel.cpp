#include "sp/costmodel.h"

#include <algorithm>
#include <cmath>

namespace ioc::sp {

const char* component_name(ComponentKind k) {
  switch (k) {
    case ComponentKind::kHelper: return "helper";
    case ComponentKind::kBonds: return "bonds";
    case ComponentKind::kCsym: return "csym";
    case ComponentKind::kCna: return "cna";
    case ComponentKind::kViz: return "viz";
    case ComponentKind::kFront: return "front";
  }
  return "?";
}

const char* compute_model_name(ComputeModel m) {
  switch (m) {
    case ComputeModel::kTree: return "tree";
    case ComputeModel::kSerial: return "serial";
    case ComputeModel::kRoundRobin: return "round-robin";
    case ComputeModel::kParallel: return "parallel";
  }
  return "?";
}

const std::vector<ComponentTraits>& all_traits() {
  static const std::vector<ComponentTraits> kTraits = {
      {ComponentKind::kHelper, "helper", 1, {ComputeModel::kTree}, false},
      {ComponentKind::kBonds,
       "bonds",
       2,
       {ComputeModel::kSerial, ComputeModel::kRoundRobin,
        ComputeModel::kParallel},
       true},
      {ComponentKind::kCsym,
       "csym",
       1,
       {ComputeModel::kSerial, ComputeModel::kRoundRobin},
       false},
      {ComponentKind::kCna,
       "cna",
       3,
       {ComputeModel::kSerial, ComputeModel::kRoundRobin},
       false,
       false},
      // Extension beyond Table I: the visualization component of the
      // paper's motivating scenario (Section I), a natural donor/offline
      // candidate since science can tolerate delayed rendering.
      {ComponentKind::kViz,
       "viz",
       1,
       {ComputeModel::kSerial, ComputeModel::kRoundRobin},
       false,
       true},
      // Extension: the S3D flame-front tracker (marching-squares contour
      // extraction is linear in grid cells).
      {ComponentKind::kFront,
       "front",
       1,
       {ComputeModel::kSerial, ComputeModel::kRoundRobin,
        ComputeModel::kParallel},
       false,
       true},
  };
  return kTraits;
}

const ComponentTraits& traits(ComponentKind k) {
  return all_traits()[static_cast<std::size_t>(k)];
}

double CostModel::base_seconds(ComponentKind k, std::uint64_t atoms) const {
  const double m = static_cast<double>(atoms) / 1.0e6;
  switch (k) {
    case ComponentKind::kHelper: return cfg_.helper_coeff * m;
    case ComponentKind::kBonds: return cfg_.bonds_coeff * m * m;
    case ComponentKind::kCsym: return cfg_.csym_coeff * m;
    case ComponentKind::kCna: return cfg_.cna_coeff * m * m * m;
    case ComponentKind::kViz: return cfg_.viz_coeff * m;
    case ComponentKind::kFront: return cfg_.front_coeff * m;
  }
  return 0;
}

double CostModel::thread_speedup(unsigned threads) const {
  if (threads <= 1) return 1.0;
  const double s = cfg_.thread_serial_fraction;
  return 1.0 / (s + (1.0 - s) / static_cast<double>(threads));
}

double CostModel::step_seconds(ComponentKind k, ComputeModel m,
                               std::uint64_t atoms, std::uint32_t width,
                               unsigned threads) const {
  const double base = base_seconds(k, atoms) / thread_speedup(threads);
  const double w = std::max<std::uint32_t>(width, 1);
  switch (m) {
    case ComputeModel::kTree: {
      const double levels = std::ceil(std::log2(std::max(2.0, w)));
      return base / w + cfg_.tree_level_seconds * levels;
    }
    case ComputeModel::kSerial:
    case ComputeModel::kRoundRobin:
      return base;
    case ComputeModel::kParallel: {
      const double s = cfg_.amdahl_serial_fraction;
      return base * (s + (1.0 - s) / w);
    }
  }
  return base;
}

double CostModel::throughput(ComponentKind k, ComputeModel m,
                             std::uint64_t atoms, std::uint32_t width,
                             unsigned threads) const {
  if (width == 0) return 0.0;
  const double step = step_seconds(k, m, atoms, width, threads);
  if (step <= 0) return 0.0;
  if (m == ComputeModel::kRoundRobin) {
    return static_cast<double>(width) / step;
  }
  return 1.0 / step;
}

std::uint32_t CostModel::width_for_throughput(ComponentKind k, ComputeModel m,
                                              std::uint64_t atoms,
                                              double steps_per_second,
                                              unsigned threads) const {
  for (std::uint32_t w = 1; w <= 4096; ++w) {
    if (throughput(k, m, atoms, w, threads) >= steps_per_second) return w;
  }
  return 4096;
}

}  // namespace ioc::sp
