// The Bonds component of the SmartPointer toolkit: decides which atom pairs
// are currently bonded (cutoff criterion) and reports bonds broken relative
// to a reference adjacency — the paper's Table I lists it as the O(n^2)
// stage with dynamic branching (it kills itself when CSym confirms a break
// and hands the pipeline to CNA).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "md/atoms.h"
#include "sp/adjacency.h"
#include "trace/sink.h"

namespace ioc::sp {

struct BondsConfig {
  /// Bond cutoff. For the LJ FCC solid (a = 1.5496) the nearest-neighbor
  /// distance is a/sqrt(2) = 1.096; 1.3 separates first and second shells.
  double cutoff = 1.3;
  /// Worker threads for the CSR build (<= 1: serial, identical output).
  unsigned threads = 1;
  /// Optional sink for kernel.compute spans (not owned).
  trace::TraceSink* sink = nullptr;
};

class BondAnalysis {
 public:
  explicit BondAnalysis(BondsConfig cfg = BondsConfig{}) : cfg_(cfg) {}

  const BondsConfig& config() const { return cfg_; }

  /// Cell-list-accelerated bond detection.
  Adjacency compute(const md::AtomData& atoms) const;
  /// Literal O(n^2) reference implementation (tests compare against it).
  Adjacency compute_naive(const md::AtomData& atoms) const;

  /// Bonds present in `reference` but absent in `current` (i < j pairs).
  static std::vector<std::pair<std::uint32_t, std::uint32_t>> broken_bonds(
      const Adjacency& reference, const Adjacency& current);

 private:
  BondsConfig cfg_;
};

}  // namespace ioc::sp
