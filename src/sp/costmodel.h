// Table-I characteristics of the SmartPointer components and the service-
// time model the DES uses at paper scale (millions of atoms). The constants
// are calibrated so the pipeline has the same bottleneck structure the paper
// reports: Bonds (O(n^2)) dominates and needs replicas to hold the 15 s
// output rate; Helper is cheap and typically over-provisioned; CNA is so
// expensive it is only run on the crack region after a confirmed break.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ioc::sp {

enum class ComponentKind { kHelper, kBonds, kCsym, kCna, kViz, kFront };

enum class ComputeModel {
  kTree,       ///< aggregation tree spanning the container's nodes
  kSerial,     ///< one instance, one step at a time
  kRoundRobin, ///< replicas each take successive steps (throughput scales)
  kParallel    ///< one parallel (MPI-style) instance across the nodes
};

const char* component_name(ComponentKind k);
const char* compute_model_name(ComputeModel m);

/// Static characteristics straight out of Table I.
struct ComponentTraits {
  ComponentKind kind;
  const char* name;
  int complexity_exponent;                   ///< O(n^e)
  std::vector<ComputeModel> supported_models;
  bool dynamic_branching;
  /// Not part of the paper's Table I: kinds this library adds (e.g. the
  /// visualization component of the motivating scenario).
  bool extension = false;
};
const ComponentTraits& traits(ComponentKind k);
const std::vector<ComponentTraits>& all_traits();

struct CostModelConfig {
  // Seconds per (10^6 atoms)^e for a single instance. Calibrated so the
  // three Table-II workloads reproduce the Fig. 7/8/9 regimes: at 256 ranks
  // Bonds needs one extra node (stolen from Helper); at 512 ranks the four
  // spares bring it just under the output rate; at 1024 ranks no width can
  // (Amdahl), forcing the offline path.
  double helper_coeff = 1.0;
  double bonds_coeff = 0.42;
  double csym_coeff = 0.8;
  double cna_coeff = 40.0;
  /// Extension: online visualization (ParaView-style) render+reduce cost.
  double viz_coeff = 0.5;
  /// Extension: flame-front extraction (S3D use case), seconds per 10^6
  /// grid cells.
  double front_coeff = 0.9;
  /// Combine overhead per tree level (seconds).
  double tree_level_seconds = 0.05;
  /// Serial fraction for the kParallel model (Amdahl).
  double amdahl_serial_fraction = 0.05;
  /// Within-node thread scaling of one instance (src/par runtime): serial
  /// fraction of a kernel step when spread over a node's cores. Calibrated
  /// from the BENCH_kernels.json microbench baseline (cell build + CSR
  /// prefix/merge passes stay serial while the pair loops scale), which
  /// puts the threaded kernels a little under ideal scaling; 0.08 matches
  /// the measured >= 3x at 8 threads with headroom for memory-bound sizes.
  double thread_serial_fraction = 0.08;
};

class CostModel {
 public:
  explicit CostModel(CostModelConfig cfg = CostModelConfig{}) : cfg_(cfg) {}

  const CostModelConfig& config() const { return cfg_; }

  /// Latency of one step through a single instance occupying `width` nodes,
  /// each instance running `threads` kernel threads (the per-container
  /// "speedup property" a local manager reports; 1 reproduces the
  /// single-threaded calibration exactly). For kSerial/kRoundRobin the
  /// width does not change per-step latency — only threads do.
  double step_seconds(ComponentKind k, ComputeModel m, std::uint64_t atoms,
                      std::uint32_t width, unsigned threads = 1) const;

  /// Sustainable steps/second of a container running `width` nodes: the
  /// lever the managers pull. Round-robin replicas multiply throughput;
  /// tree/parallel models shorten the step instead; threads shorten every
  /// instance's step.
  double throughput(ComponentKind k, ComputeModel m, std::uint64_t atoms,
                    std::uint32_t width, unsigned threads = 1) const;

  /// Nodes needed to sustain `steps_per_second` — the answer a local
  /// manager gives when the global manager asks "what do you need?".
  std::uint32_t width_for_throughput(ComponentKind k, ComputeModel m,
                                     std::uint64_t atoms,
                                     double steps_per_second,
                                     unsigned threads = 1) const;

  /// Within-node speedup of one instance on `threads` cores (Amdahl with
  /// cfg.thread_serial_fraction); 1.0 at threads <= 1.
  double thread_speedup(unsigned threads) const;

 private:
  double base_seconds(ComponentKind k, std::uint64_t atoms) const;

  CostModelConfig cfg_;
};

}  // namespace ioc::sp
