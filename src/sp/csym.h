// Central-symmetry parameter (CSym): per-atom measure of local inversion
// symmetry. Zero on a perfect centrosymmetric lattice (FCC); grows at
// defects, surfaces, and crack faces. The pipeline uses it to confirm that
// a bond break reported by Bonds is a real inelastic event.
#pragma once

#include <cstddef>
#include <vector>

#include "md/atoms.h"
#include "trace/sink.h"

namespace ioc::sp {

struct CsymConfig {
  int num_neighbors = 12;  ///< 12 for FCC, 8 for BCC
  double cutoff = 1.6;     ///< neighbor-search radius
  /// Worker threads. Atoms are independent, so any thread count produces
  /// bit-identical CSP values; <= 1 runs inline on the caller.
  unsigned threads = 1;
  /// Optional sink for kernel.compute spans (not owned).
  trace::TraceSink* sink = nullptr;
};

class CentralSymmetry {
 public:
  explicit CentralSymmetry(CsymConfig cfg = CsymConfig{}) : cfg_(cfg) {}

  const CsymConfig& config() const { return cfg_; }

  /// Per-atom CSP values, following the standard formulation: take the
  /// num_neighbors nearest neighbors, form all pair sums |r_i + r_j|^2, and
  /// add up the num_neighbors/2 smallest. Atoms with fewer neighbors than
  /// requested use what they have (their CSP is naturally elevated).
  std::vector<double> compute(const md::AtomData& atoms) const;

 private:
  CsymConfig cfg_;
};

/// Decide whether a structural break has occurred: true when more than
/// `min_fraction` of atoms exceed `threshold`.
struct BreakDetector {
  double threshold = 0.5;     ///< CSP units (squared length)
  double min_fraction = 0.001;

  bool detect(const std::vector<double>& csp) const;
  /// Indices of atoms above threshold — the "crack region" CNA labels.
  std::vector<std::uint32_t> region(const std::vector<double>& csp) const;
};

}  // namespace ioc::sp
