#include "sp/csym.h"

#include <algorithm>

#include "md/cells.h"
#include "par/thread_pool.h"
#include "sp/adjacency.h"
#include "trace/kernel_span.h"

namespace ioc::sp {

std::vector<double> CentralSymmetry::compute(const md::AtomData& atoms) const {
  trace::KernelSpan span(cfg_.sink, "csym", cfg_.threads,
                         static_cast<double>(atoms.size()));
  md::CellList cl(atoms.box, cfg_.cutoff);
  cl.build(atoms.pos);
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> neighbors;
  cl.neighbor_csr(atoms.pos, cfg_.threads, &offsets, &neighbors);
  const Adjacency adj =
      Adjacency::from_csr(std::move(offsets), std::move(neighbors));

  std::vector<double> csp(atoms.size(), 0.0);
  // Atoms are independent; chunks share nothing but the read-only adjacency
  // and write disjoint csp slots, so per-atom values are bit-identical at
  // any thread count — including the grain-clamped serial fast path.
  const unsigned eff = par::grain_limited_threads(cfg_.threads, atoms.size());
  par::parallel_for(eff, atoms.size(), [&](std::size_t lo,
                                           std::size_t hi, unsigned) {
    std::vector<std::pair<double, md::Vec3>> nn;  // (r2, displacement)
    std::vector<double> pair_sums;
    for (std::size_t i = lo; i < hi; ++i) {
      nn.clear();
      for (std::uint32_t j : adj.neighbors_of(i)) {
        const md::Vec3 d = atoms.box.min_image(atoms.pos[j], atoms.pos[i]);
        nn.emplace_back(d.norm2(), d);
      }
      const std::size_t k = std::min<std::size_t>(
          nn.size(), static_cast<std::size_t>(cfg_.num_neighbors));
      if (k < 2) {
        // An isolated atom has no symmetry to measure; flag it strongly.
        csp[i] = cfg_.cutoff * cfg_.cutoff;
        continue;
      }
      std::partial_sort(
          nn.begin(), nn.begin() + static_cast<std::ptrdiff_t>(k), nn.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      pair_sums.clear();
      for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t b = a + 1; b < k; ++b) {
          pair_sums.push_back((nn[a].second + nn[b].second).norm2());
        }
      }
      const std::size_t take = k / 2;
      std::partial_sort(pair_sums.begin(),
                        pair_sums.begin() + static_cast<std::ptrdiff_t>(take),
                        pair_sums.end());
      double sum = 0;
      for (std::size_t t = 0; t < take; ++t) sum += pair_sums[t];
      csp[i] = sum;
    }
  });
  return csp;
}

bool BreakDetector::detect(const std::vector<double>& csp) const {
  if (csp.empty()) return false;
  std::size_t above = 0;
  for (double v : csp) {
    if (v > threshold) ++above;
  }
  return static_cast<double>(above) >
         min_fraction * static_cast<double>(csp.size());
}

std::vector<std::uint32_t> BreakDetector::region(
    const std::vector<double>& csp) const {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < csp.size(); ++i) {
    if (csp[i] > threshold) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

}  // namespace ioc::sp
