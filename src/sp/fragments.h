// Material-fragment detection and tracking — the workflow the paper's
// future work moves online for the CTH shock-physics code: "turning the raw
// atomic data into materials fragments to allow tracking... both generating
// fragments and tracking them as they evolve in the simulation."
//
// A fragment is a connected component of the bond graph; tracking matches
// fragments across timesteps by the atom ids they share.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "md/atoms.h"
#include "sp/adjacency.h"
#include "trace/sink.h"

namespace ioc::sp {

struct Fragment {
  std::uint32_t id = 0;                   ///< stable tracking id
  std::vector<std::uint32_t> atoms;       ///< atom indices, ascending
  md::Vec3 centroid{};
  std::size_t size() const { return atoms.size(); }
};

struct FragmentSet {
  std::vector<Fragment> fragments;        ///< sorted by descending size
  std::vector<std::uint32_t> atom_fragment;  ///< atom index -> fragment id

  std::size_t count() const { return fragments.size(); }
  const Fragment* largest() const {
    return fragments.empty() ? nullptr : &fragments.front();
  }
  const Fragment* find(std::uint32_t id) const;
};

/// Decompose the bond graph into fragments (connected components via
/// union-find) and compute per-fragment geometry. `threads` parallelizes
/// the bond pass (per-chunk local union-find over atom ranges, merged in
/// chunk order); fragment ids are canonical — ordered by each component's
/// smallest atom index — so every thread count yields the same FragmentSet.
/// An optional sink records a kernel.compute span per invocation.
FragmentSet find_fragments(const md::AtomData& atoms, const Adjacency& bonds,
                           unsigned threads = 1,
                           trace::TraceSink* sink = nullptr);

/// What happened to the fragment population between two steps.
struct FragmentEvent {
  enum class Kind { kContinued, kSplit, kMerged, kAppeared, kVanished };
  Kind kind = Kind::kContinued;
  std::uint32_t id = 0;                   ///< id in the current step
  std::vector<std::uint32_t> parents;     ///< previous-step ids involved
};
const char* fragment_event_name(FragmentEvent::Kind k);

/// Tracks fragments across successive steps: assigns stable ids by majority
/// atom overlap (fragments are matched to the previous-step fragment that
/// contributed most of their atoms) and reports split/merge events.
class FragmentTracker {
 public:
  /// Ingest the next step's fragment decomposition; rewrites the set's ids
  /// to stable tracking ids and returns the events since the previous step.
  std::vector<FragmentEvent> track(const md::AtomData& atoms,
                                   FragmentSet& current);

  std::uint64_t steps_seen() const { return steps_; }
  std::uint32_t next_id() const { return next_id_; }

 private:
  // Previous step: atom id -> fragment tracking id.
  std::map<std::int64_t, std::uint32_t> prev_membership_;
  std::uint32_t next_id_ = 1;
  std::uint64_t steps_ = 0;
};

}  // namespace ioc::sp
