#include "sp/helper.h"

#include <cassert>
#include <stdexcept>

namespace ioc::sp {

AggregationTree::AggregationTree(std::size_t fanin) : fanin_(fanin) {
  assert(fanin >= 2);
}

std::size_t AggregationTree::depth_for(std::size_t leaves) const {
  std::size_t depth = 0;
  std::size_t width = leaves;
  while (width > 1) {
    width = (width + fanin_ - 1) / fanin_;
    ++depth;
  }
  return depth;
}

md::AtomData AggregationTree::aggregate(
    const std::vector<md::AtomData>& chunks) const {
  if (chunks.empty()) return {};
  // Combine level by level, the way the physical tree does; the result is
  // identical to straight concatenation but the structure mirrors the cost
  // model's depth term.
  std::vector<md::AtomData> level = chunks;
  while (level.size() > 1) {
    std::vector<md::AtomData> next;
    for (std::size_t i = 0; i < level.size(); i += fanin_) {
      md::AtomData merged = std::move(level[i]);
      for (std::size_t k = 1; k < fanin_ && i + k < level.size(); ++k) {
        const md::AtomData& c = level[i + k];
        if (c.box.lo.x != merged.box.lo.x || c.box.hi.x != merged.box.hi.x ||
            c.box.hi.y != merged.box.hi.y || c.box.hi.z != merged.box.hi.z) {
          throw std::invalid_argument(
              "AggregationTree: chunks disagree on the simulation box");
        }
        merged.id.insert(merged.id.end(), c.id.begin(), c.id.end());
        merged.pos.insert(merged.pos.end(), c.pos.begin(), c.pos.end());
        merged.vel.insert(merged.vel.end(), c.vel.begin(), c.vel.end());
        merged.force.insert(merged.force.end(), c.force.begin(),
                            c.force.end());
      }
      next.push_back(std::move(merged));
    }
    level = std::move(next);
  }
  return std::move(level.front());
}

std::vector<md::AtomData> AggregationTree::scatter(const md::AtomData& atoms,
                                                   std::size_t parts) {
  std::vector<md::AtomData> out(parts);
  const std::size_t n = atoms.size();
  const std::size_t per = (n + parts - 1) / parts;
  for (std::size_t p = 0; p < parts; ++p) {
    out[p].box = atoms.box;
    const std::size_t b = p * per;
    const std::size_t e = std::min(n, b + per);
    for (std::size_t i = b; i < e; ++i) {
      out[p].id.push_back(atoms.id[i]);
      out[p].pos.push_back(atoms.pos[i]);
      out[p].vel.push_back(atoms.vel[i]);
      out[p].force.push_back(atoms.force[i]);
    }
  }
  return out;
}

}  // namespace ioc::sp
