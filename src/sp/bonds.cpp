#include "sp/bonds.h"

#include "md/cells.h"
#include "trace/kernel_span.h"

namespace ioc::sp {

Adjacency BondAnalysis::compute(const md::AtomData& atoms) const {
  trace::KernelSpan span(cfg_.sink, "bonds", cfg_.threads,
                         static_cast<double>(atoms.size()));
  md::CellList cl(atoms.box, cfg_.cutoff);
  cl.build(atoms.pos);
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> neighbors;
  cl.neighbor_csr(atoms.pos, cfg_.threads, &offsets, &neighbors);
  return Adjacency::from_csr(std::move(offsets), std::move(neighbors));
}

Adjacency BondAnalysis::compute_naive(const md::AtomData& atoms) const {
  const double rc2 = cfg_.cutoff * cfg_.cutoff;
  std::vector<std::vector<std::uint32_t>> lists(atoms.size());
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    for (std::size_t j = i + 1; j < atoms.size(); ++j) {
      if (atoms.box.min_image(atoms.pos[i], atoms.pos[j]).norm2() <= rc2) {
        lists[i].push_back(static_cast<std::uint32_t>(j));
        lists[j].push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  return Adjacency::from_lists(lists);
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
BondAnalysis::broken_bonds(const Adjacency& reference,
                           const Adjacency& current) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> broken;
  const std::size_t n = std::min(reference.size(), current.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j : reference.neighbors_of(i)) {
      if (j <= i || j >= n) continue;
      if (!current.bonded(i, j)) broken.emplace_back(i, j);
    }
  }
  return broken;
}

}  // namespace ioc::sp
