// Exhaustive explorer for the verification model: breadth-first search over
// the product automaton with state hashing (a visited set over the
// canonical byte encoding) and optional partial-order reduction via the
// model's ample sets. BFS, not DFS, so the first violation found sits at
// minimum depth — the counterexample is a shortest trace.
//
// Termination needs no cycle handling beyond the visited set: the model's
// state graph is acyclic. Every action strictly decreases the lexicographic
// measure (remaining fault budget + retries, unreached one-shot milestones,
// weighted in-flight copies): faults and timeouts consume budget/retries,
// conversation and round progress consumes one-shot milestones (resets of
// round retries ride on a milestone), and deliveries convert a
// weight-2 request copy into at most a weight-1 reply copy. This is also
// what discharges the ample-set cycle condition for the reduction.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "verify/model.h"

namespace ioc::verify {

struct CheckOptions {
  bool por = true;
  /// Hard cap on stored states; hitting it makes the run inconclusive.
  std::size_t max_states = 20u * 1000 * 1000;
};

struct CheckReport {
  std::size_t states = 0;     ///< distinct states stored
  std::size_t edges = 0;      ///< transitions applied
  std::size_t terminals = 0;  ///< states with no enabled action
  std::size_t depth = 0;      ///< deepest BFS layer reached
  double seconds = 0;
  bool capped = false;        ///< max_states hit: exploration inconclusive
  std::optional<Violation> violation;
  /// Shortest action path from the initial state into the violation.
  std::vector<Step> counterexample;
  /// The counterexample's control-trace events, in order, with `at` set to
  /// the 1-based event index — ready for lint::check_trace or trace export.
  std::vector<core::ControlTraceEvent> trace;

  bool ok() const { return !violation.has_value() && !capped; }
};

CheckReport run_check(const Model& model, const CheckOptions& opts = {});

}  // namespace ioc::verify
