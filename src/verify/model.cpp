#include "verify/model.h"

#include <algorithm>
#include <sstream>

#include "txn/d2t_model.h"

namespace ioc::verify {

using core::CmState;

namespace {

// Round tags, in the wire order of txn/d2t_model.h.
constexpr std::size_t kBegin = 0;
constexpr std::size_t kVote = 1;
constexpr std::size_t kDecide = 2;

const char* round_request(const State& s, std::size_t round) {
  switch (round) {
    case kBegin:
      return txn::kBeginMsg;
    case kVote:
      return txn::kVoteMsg;
    default:
      return s.commit ? txn::kCommitMsg : txn::kAbortMsg;
  }
}

constexpr std::size_t kDonor = 0;
constexpr std::size_t kRecipient = 1;

void append(std::string* out, const void* p, std::size_t n) {
  out->append(static_cast<const char*>(p), n);
}

}  // namespace

int Scenario::total_nodes() const {
  int demand = 0;
  for (const auto& c : containers) demand += c.width;
  return staging_nodes > demand ? staging_nodes : demand;
}

Scenario Scenario::two_container() {
  Scenario s;
  s.containers.push_back({"bonds", 2, true});
  s.containers.push_back({"csym", 2, true});
  return s;
}

Scenario Scenario::from_spec(const core::PipelineSpec& spec,
                             std::size_t max_containers) {
  Scenario s;
  max_containers = std::min(max_containers, kMaxContainers);
  for (const auto& c : spec.containers) {
    if (s.containers.size() >= max_containers) break;
    if (c.starts_offline) continue;  // dormant stages run no conversation
    s.containers.push_back(
        {c.name, static_cast<int>(c.initial_nodes), true});
  }
  s.staging_nodes = static_cast<int>(spec.staging_nodes);
  s.trade = s.containers.size() >= kMembers && s.containers[0].width > 0;
  return s;
}

const char* action_name(ActionKind k) {
  switch (k) {
    case ActionKind::kStartConv:
      return "start-conversation";
    case ActionKind::kDeliverReq:
      return "deliver-request";
    case ActionKind::kDropReq:
      return "drop-request";
    case ActionKind::kDupReq:
      return "duplicate-request";
    case ActionKind::kDeliverRep:
      return "deliver-reply";
    case ActionKind::kDropRep:
      return "drop-reply";
    case ActionKind::kDupRep:
      return "duplicate-reply";
    case ActionKind::kCmTimeout:
      return "conversation-timeout";
    case ActionKind::kStaleTimeout:
      return "stale-timeout";
    case ActionKind::kCrash:
      return "crash";
    case ActionKind::kStartTxn:
      return "start-transaction";
    case ActionKind::kDeliverTreq:
      return "deliver-round-request";
    case ActionKind::kDropTreq:
      return "drop-round-request";
    case ActionKind::kDupTreq:
      return "duplicate-round-request";
    case ActionKind::kDeliverTrep:
      return "deliver-round-reply";
    case ActionKind::kDropTrep:
      return "drop-round-reply";
    case ActionKind::kDupTrep:
      return "duplicate-round-reply";
    case ActionKind::kTxnTimeout:
      return "round-timeout";
  }
  return "?";
}

const char* property_name(Property p) {
  switch (p) {
    case Property::kConservation:
      return "conservation";
    case Property::kAtMostOnce:
      return "at-most-once";
    case Property::kFenceResurrect:
      return "fence-resurrect";
    case Property::kTimeoutOrphan:
      return "timeout-orphan";
    case Property::kStuck:
      return "stuck";
    case Property::kOrphanEscrow:
      return "orphan-escrow";
  }
  return "?";
}

std::string State::encode(std::size_t n) const {
  std::string out;
  out.reserve(16 * n + 32);
  for (std::size_t c = 0; c < n; ++c) {
    const std::uint8_t flags =
        static_cast<std::uint8_t>((fenced[c] << 0) | (crashed[c] << 1) |
                                  (timeout_pending[c] << 2) |
                                  (stale_timer[c] << 3));
    append(&out, &fsm[c], 1);
    append(&out, &width[c], 1);
    append(&out, &flags, 1);
    append(&out, &conv[c], 1);
    append(&out, &conv_retries[c], 1);
    append(&out, &req_in[c], 1);
    append(&out, &rep_in[c], 1);
  }
  append(&out, &txn_phase, 1);
  append(&out, &round_retries, 1);
  std::uint8_t tflags = static_cast<std::uint8_t>((escalated << 0) |
                                                  (commit << 1));
  for (std::size_t m = 0; m < kMembers; ++m) {
    tflags = static_cast<std::uint8_t>(
        tflags | (answered[m] << (2 + m)) | (voted[m] << (4 + m)));
    append(&out, treq_in[m], kTxnRounds);
    append(&out, trep_in[m], kTxnRounds);
  }
  append(&out, &tflags, 1);
  std::uint8_t tflags2 = 0;
  for (std::size_t m = 0; m < kMembers; ++m) {
    tflags2 = static_cast<std::uint8_t>(
        tflags2 | (voted_yes[m] << m) | (decided[m] << (2 + m)) |
        (prepared[m] << (4 + m)) | (finished[m] << (6 + m)));
  }
  append(&out, &tflags2, 1);
  append(&out, &pending, 1);
  append(&out, &yes_count, 1);
  append(&out, prepare_count, kMembers);
  append(&out, apply_count, kMembers);
  append(&out, &spares, 1);
  append(&out, &escrow, 1);
  append(&out, &drops, 1);
  append(&out, &dups, 1);
  append(&out, &crashes, 1);
  return out;
}

Model::Model(Scenario s) : scenario_(std::move(s)) {
  total_ = scenario_.total_nodes();
}

State Model::initial() const {
  State s;
  const std::size_t n = num_containers();
  int demand = 0;
  for (std::size_t c = 0; c < n; ++c) {
    s.fsm[c] = static_cast<std::uint8_t>(CmState::kIdle);
    s.width[c] = static_cast<std::int8_t>(scenario_.containers[c].width);
    s.conv[c] = static_cast<std::uint8_t>(
        scenario_.containers[c].query ? Conv::kPending : Conv::kNone);
    s.conv_retries[c] = static_cast<std::int8_t>(scenario_.cm_retries);
    demand += scenario_.containers[c].width;
  }
  s.spares = static_cast<std::int8_t>(total_ - demand);
  s.txn_phase = static_cast<std::uint8_t>(scenario_.trade ? TxnPhase::kIdle
                                                          : TxnPhase::kNever);
  return s;
}

bool Model::emit_ok(const State& s, std::size_t c) const {
  // A trade-side resize round with a container only happens (and therefore
  // only appears in the control trace) when its manager is reachable and
  // idle; the ledger move itself is GM-local and never waits. Skipping the
  // events of an unreachable/busy endpoint can only under-count a width in
  // the replay, never over-count it, so replayed clean traces stay clean.
  return s.fsm[c] == static_cast<std::uint8_t>(CmState::kIdle) &&
         !s.fenced[c] && !s.crashed[c];
}

void Model::emit_event(std::size_t c, const char* type, bool to_cm,
                       int delta, Step* step) const {
  if (step == nullptr) return;
  core::ControlTraceEvent ev;
  ev.container = scenario_.containers[c].name;
  ev.type = type;
  ev.to_cm = to_cm;
  ev.delta = delta;
  step->events.push_back(std::move(ev));
}

void Model::emit_pair(State& st, std::size_t c, const char* req, int delta,
                      Step* step) const {
  if (!emit_ok(st, c)) return;
  core::ProtocolFsm fsm(static_cast<CmState>(st.fsm[c]));
  // Drive the real Fig. 3 table; if the table ever stops accepting this
  // exchange the model diverges visibly instead of silently.
  if (!fsm.advance(req)) return;
  emit_event(c, req, true, 0, step);
  fsm.advance(core::kMsgDone);
  emit_event(c, core::kMsgDone, false, delta, step);
  st.fsm[c] = static_cast<std::uint8_t>(fsm.state());
  if (scenario_.bugs.stale_timeout) {
    // Bug model: the round's deadline timer is never cancelled when the
    // round completes; it stays armed and can fire into a later
    // conversation on the same container.
    st.stale_timer[c] = true;
  }
}

void Model::fence(State& st, std::size_t c, Step* step) const {
  emit_event(c, core::kMarkEscalate, true, 0, step);
  st.spares = static_cast<std::int8_t>(st.spares + st.width[c]);
  st.width[c] = 0;
  st.fenced[c] = true;
  st.fsm[c] = static_cast<std::uint8_t>(CmState::kOffline);
  if (st.conv[c] == static_cast<std::uint8_t>(Conv::kAwaiting) ||
      st.conv[c] == static_cast<std::uint8_t>(Conv::kPending)) {
    st.conv[c] = static_cast<std::uint8_t>(Conv::kDone);
  }
  st.timeout_pending[c] = false;
}

void Model::start_round(State& st, TxnPhase phase, Step* step) const {
  st.txn_phase = static_cast<std::uint8_t>(phase);
  st.round_retries = static_cast<std::int8_t>(scenario_.txn_retries);
  st.pending = kMembers;
  const std::size_t round = static_cast<std::size_t>(phase) -
                            static_cast<std::size_t>(TxnPhase::kBegin);
  for (std::size_t m = 0; m < kMembers; ++m) {
    st.answered[m] = false;
    ++st.treq_in[m][round];
  }
  if (step != nullptr) {
    step->label += std::string(" -> round ") + round_request(st, round);
  }
}

void Model::apply_decision(State& st, std::size_t m, Step* step) const {
  if (st.commit) {
    if (m == kRecipient) {
      // Escrow -> recipient (trade.cpp RecipientTradeOp::commit). A missing
      // escrow node means the donor never prepared: the grant manufactures
      // a node and conservation breaks — exactly the double-counted-vote
      // failure the checker exists to catch.
      if (st.escrow > 0) --st.escrow;
      if (st.fenced[kRecipient]) {
        ++st.spares;  // grant to a fenced container is reclaimed, not applied
      } else {
        emit_pair(st, kRecipient, core::kMsgIncrease, +1, step);
        ++st.width[kRecipient];
      }
    }
    // Donor commit: the escrowed node is gone for good; nothing to move.
  } else {
    if (m == kDonor && st.prepared[kDonor]) {
      // Escrow -> donor restore (DonorTradeOp::abort).
      st.prepared[kDonor] = false;
      if (st.escrow > 0) --st.escrow;
      if (st.fenced[kDonor]) {
        ++st.spares;  // restoring to a fenced donor repairs the pool instead
      } else {
        emit_pair(st, kDonor, core::kMsgIncrease, +1, step);
        ++st.width[kDonor];
      }
    }
  }
}

void Model::finish_txn(State& st, Step* step) const {
  // Sub-coordinator recovery (d2t.cpp recover pass): the decision is pushed
  // through for every member that never applied it, and the member-side
  // guards are advanced so stale round traffic is refused from now on.
  for (std::size_t m = 0; m < kMembers; ++m) {
    if (!st.finished[m]) {
      st.finished[m] = true;
      ++st.apply_count[m];
      apply_decision(st, m, step);
    }
    st.decided[m] = true;
  }
  st.txn_phase = static_cast<std::uint8_t>(TxnPhase::kDone);
  st.pending = 0;
}

void Model::deliver_member(State& st, std::size_t m, std::size_t round,
                           Step* step) const {
  --st.treq_in[m][round];
  if (st.crashed[m] || st.fenced[m]) return;  // endpoint gone: message lost
  switch (round) {
    case kBegin:
      ++st.trep_in[m][kBegin];  // idempotent ack
      break;
    case kVote:
      if (st.decided[m]) return;  // guard: decision token already newer
      if (!st.voted[m]) {
        st.voted[m] = true;
        if (m == kDonor) {
          if (st.width[kDonor] > 0) {
            // DonorTradeOp::prepare — donor -> escrow, exactly once.
            st.prepared[kDonor] = true;
            ++st.prepare_count[kDonor];
            emit_pair(st, kDonor, core::kMsgDecrease, -1, step);
            --st.width[kDonor];
            ++st.escrow;
            st.voted_yes[kDonor] = true;
          } else {
            st.voted_yes[kDonor] = false;
          }
        } else {
          ++st.prepare_count[kRecipient];  // recipient prepare is a no-op
          st.voted_yes[kRecipient] = true;
        }
      }
      // A duplicate vote request re-sends the recorded vote; the voted_token
      // guard keeps it from re-preparing.
      ++st.trep_in[m][kVote];
      break;
    default:
      if (!st.decided[m]) {
        st.decided[m] = true;
        st.finished[m] = true;
        ++st.apply_count[m];
        apply_decision(st, m, step);
      }
      // Duplicates re-ack from the decided_token guard without re-applying.
      ++st.trep_in[m][kDecide];
      break;
  }
}

void Model::gather(State& st, std::size_t m, std::size_t round,
                   Step* step) const {
  --st.trep_in[m][round];
  const std::size_t current =
      static_cast<std::size_t>(st.txn_phase) -
      static_cast<std::size_t>(TxnPhase::kBegin);
  if (st.txn_phase < static_cast<std::uint8_t>(TxnPhase::kBegin) ||
      st.txn_phase > static_cast<std::uint8_t>(TxnPhase::kDecide) ||
      round != current) {
    return;  // reply token belongs to another round: filtered
  }
  if (scenario_.bugs.shared_token) {
    // Bug model: the gather counts every matching reply without asking which
    // member it came from, so a duplicated reply completes the round (and,
    // in the vote round, double-counts a YES).
    if (st.pending > 0) --st.pending;
    st.answered[m] = true;
    if (round == kVote && st.voted_yes[m]) ++st.yes_count;
  } else {
    if (st.answered[m]) return;  // per-member dedupe: duplicate ignored
    st.answered[m] = true;
    --st.pending;
    if (round == kVote && st.voted_yes[m]) ++st.yes_count;
  }
  if (st.pending != 0) return;
  switch (round) {
    case kBegin:
      start_round(st, TxnPhase::kVote, step);
      break;
    case kVote:
      st.commit = (st.yes_count == kMembers);
      start_round(st, TxnPhase::kDecide, step);
      break;
    default:
      finish_txn(st, step);
      break;
  }
}

void Model::enabled(const State& s, std::vector<Action>* out) const {
  out->clear();
  const std::size_t n = num_containers();
  const auto push = [out](ActionKind k, std::size_t t) {
    out->push_back({k, static_cast<std::uint8_t>(t)});
  };
  const bool can_drop = s.drops < scenario_.faults.drops;
  const bool can_dup = s.dups < scenario_.faults.dups;
  for (std::size_t c = 0; c < n; ++c) {
    if (s.conv[c] == static_cast<std::uint8_t>(Conv::kPending) &&
        s.fsm[c] == static_cast<std::uint8_t>(CmState::kIdle) &&
        !s.fenced[c]) {
      push(ActionKind::kStartConv, c);
    }
    if (s.req_in[c] > 0) {
      push(ActionKind::kDeliverReq, c);
      if (can_drop) push(ActionKind::kDropReq, c);
      if (can_dup) push(ActionKind::kDupReq, c);
    }
    if (s.rep_in[c] > 0) {
      push(ActionKind::kDeliverRep, c);
      if (can_drop) push(ActionKind::kDropRep, c);
      if (can_dup) push(ActionKind::kDupRep, c);
    }
    if (s.conv[c] == static_cast<std::uint8_t>(Conv::kAwaiting)) {
      // Without timeout_races, the deadline only fires once the round can no
      // longer answer by itself (no copy in flight in either direction).
      if (scenario_.timeout_races || (s.req_in[c] == 0 && s.rep_in[c] == 0)) {
        push(ActionKind::kCmTimeout, c);
      }
      if (scenario_.bugs.stale_timeout && s.stale_timer[c]) {
        push(ActionKind::kStaleTimeout, c);
      }
    }
    if (!s.crashed[c] && !s.fenced[c] && s.crashes < scenario_.faults.crashes) {
      push(ActionKind::kCrash, c);
    }
  }
  if (s.txn_phase == static_cast<std::uint8_t>(TxnPhase::kIdle)) {
    push(ActionKind::kStartTxn, 0);
  }
  for (std::size_t m = 0; m < kMembers && scenario_.trade; ++m) {
    for (std::size_t r = 0; r < kTxnRounds; ++r) {
      const std::size_t t = m * kTxnRounds + r;
      if (s.treq_in[m][r] > 0) {
        // Vote/decide processing runs through the member's serialized
        // manager mailbox: it waits until no control conversation is mid
        // flight (crashed/fenced endpoints swallow the copy regardless).
        const bool gated =
            r != kBegin &&
            s.fsm[m] != static_cast<std::uint8_t>(CmState::kIdle) &&
            !s.crashed[m] && !s.fenced[m];
        if (!gated) push(ActionKind::kDeliverTreq, t);
        if (can_drop) push(ActionKind::kDropTreq, t);
        if (can_dup) push(ActionKind::kDupTreq, t);
      }
      if (s.trep_in[m][r] > 0) {
        push(ActionKind::kDeliverTrep, t);
        if (can_drop) push(ActionKind::kDropTrep, t);
        if (can_dup) push(ActionKind::kDupTrep, t);
      }
    }
  }
  if (s.txn_phase >= static_cast<std::uint8_t>(TxnPhase::kBegin) &&
      s.txn_phase <= static_cast<std::uint8_t>(TxnPhase::kDecide) &&
      s.pending > 0) {
    // Lost-only deadline: the gather times out once some unanswered member
    // has no round traffic in flight (its message was dropped or swallowed
    // by a dead endpoint), so the round cannot complete unaided.
    bool stalled = scenario_.timeout_races;
    const std::size_t round =
        static_cast<std::size_t>(s.txn_phase) -
        static_cast<std::size_t>(TxnPhase::kBegin);
    for (std::size_t m = 0; m < kMembers && !stalled; ++m) {
      stalled = !s.answered[m] && s.treq_in[m][round] == 0 &&
                s.trep_in[m][round] == 0;
    }
    if (stalled) push(ActionKind::kTxnTimeout, 0);
  }
}

State Model::apply(const State& s, const Action& a, Step* step) const {
  State st = s;
  if (step != nullptr) {
    step->action = a;
    step->label = action_name(a.kind);
    step->events.clear();
  }
  const std::size_t c = a.target;
  const std::size_t m = a.target / kTxnRounds;
  const std::size_t r = a.target % kTxnRounds;
  switch (a.kind) {
    case ActionKind::kStartConv:
      st.conv[c] = static_cast<std::uint8_t>(Conv::kAwaiting);
      ++st.req_in[c];
      emit_event(c, core::kMsgQueryNeeds, true, 0, step);
      {
        core::ProtocolFsm fsm(static_cast<CmState>(st.fsm[c]));
        fsm.advance(core::kMsgQueryNeeds);
        st.fsm[c] = static_cast<std::uint8_t>(fsm.state());
      }
      break;
    case ActionKind::kDeliverReq:
      --st.req_in[c];
      // The CM answers every copy; duplicates are served from the token-
      // keyed reply cache (container.cpp manager_loop) with the same reply.
      if (!st.crashed[c] && !st.fenced[c]) ++st.rep_in[c];
      break;
    case ActionKind::kDropReq:
      --st.req_in[c];
      ++st.drops;
      break;
    case ActionKind::kDupReq:
      // Deliver one copy, keep a duplicate in flight.
      ++st.dups;
      if (!st.crashed[c] && !st.fenced[c]) ++st.rep_in[c];
      break;
    case ActionKind::kDeliverRep:
      --st.rep_in[c];
      if (st.conv[c] == static_cast<std::uint8_t>(Conv::kAwaiting)) {
        st.conv[c] = static_cast<std::uint8_t>(Conv::kDone);
        core::ProtocolFsm fsm(static_cast<CmState>(st.fsm[c]));
        fsm.advance(core::kMsgNeeds);
        st.fsm[c] = static_cast<std::uint8_t>(fsm.state());
        emit_event(c, core::kMsgNeeds, false, 0, step);
      }
      // A copy landing after the conversation closed is stale: ignored.
      break;
    case ActionKind::kDropRep:
      --st.rep_in[c];
      ++st.drops;
      break;
    case ActionKind::kDupRep:
      ++st.dups;
      if (st.conv[c] == static_cast<std::uint8_t>(Conv::kAwaiting)) {
        st.conv[c] = static_cast<std::uint8_t>(Conv::kDone);
        core::ProtocolFsm fsm(static_cast<CmState>(st.fsm[c]));
        fsm.advance(core::kMsgNeeds);
        st.fsm[c] = static_cast<std::uint8_t>(fsm.state());
        emit_event(c, core::kMsgNeeds, false, 0, step);
      }
      break;
    case ActionKind::kCmTimeout:
      emit_event(c, core::kMarkTimeout, true, 0, step);
      if (st.conv_retries[c] > 0) {
        --st.conv_retries[c];
        ++st.req_in[c];
        emit_event(c, core::kMarkRetry, true, 0, step);
      } else {
        fence(st, c, step);
      }
      break;
    case ActionKind::kStaleTimeout:
      // Bug path: the stale deadline of an already-completed round fires and
      // is mistaken for this conversation's; the GM marks the timeout,
      // assumes the round was already recovered, and walks away — no RETRY,
      // no ESCALATE, conversation abandoned (the IOC105 shape).
      st.stale_timer[c] = false;
      st.conv[c] = static_cast<std::uint8_t>(Conv::kAbandoned);
      st.timeout_pending[c] = true;
      emit_event(c, core::kMarkTimeout, true, 0, step);
      break;
    case ActionKind::kCrash:
      st.crashed[c] = true;
      ++st.crashes;
      break;
    case ActionKind::kStartTxn:
      start_round(st, TxnPhase::kBegin, step);
      break;
    case ActionKind::kDeliverTreq:
      deliver_member(st, m, r, step);
      break;
    case ActionKind::kDropTreq:
      --st.treq_in[m][r];
      ++st.drops;
      break;
    case ActionKind::kDupTreq:
      ++st.dups;
      ++st.treq_in[m][r];  // requeued duplicate...
      deliver_member(st, m, r, step);  // ...while one copy is processed
      break;
    case ActionKind::kDeliverTrep:
      gather(st, m, r, step);
      break;
    case ActionKind::kDropTrep:
      --st.trep_in[m][r];
      ++st.drops;
      break;
    case ActionKind::kDupTrep:
      ++st.dups;
      ++st.trep_in[m][r];
      gather(st, m, r, step);
      break;
    case ActionKind::kTxnTimeout: {
      const std::size_t round =
          static_cast<std::size_t>(st.txn_phase) -
          static_cast<std::size_t>(TxnPhase::kBegin);
      if (st.round_retries > 0) {
        --st.round_retries;
        for (std::size_t i = 0; i < kMembers; ++i) {
          if (!st.answered[i]) ++st.treq_in[i][round];
        }
      } else {
        // Retries exhausted: the round escalates. An incomplete begin or
        // vote aborts the transaction; an incomplete decide falls to
        // sub-coordinator recovery, which finishes pushing the decision.
        st.escalated = true;
        if (round == kDecide) {
          finish_txn(st, step);
        } else {
          st.commit = false;
          start_round(st, TxnPhase::kDecide, step);
        }
      }
      break;
    }
  }
  if (step != nullptr && a.kind != ActionKind::kStartTxn &&
      a.kind != ActionKind::kTxnTimeout) {
    const bool container_scoped = a.kind <= ActionKind::kCrash;
    step->label = std::string(action_name(a.kind)) + " " +
                  (container_scoped
                       ? scenario_.containers[c].name
                       : scenario_.containers[m].name + "/" +
                             round_request(st, r));
  }
  return st;
}

std::optional<Violation> Model::check(const State& s) const {
  const std::size_t n = num_containers();
  long sum = s.spares + s.escrow;
  for (std::size_t c = 0; c < n; ++c) sum += s.width[c];
  if (s.spares < 0 || s.escrow < 0) {
    return Violation{Property::kConservation, "pool ledger went negative"};
  }
  for (std::size_t c = 0; c < n; ++c) {
    if (s.width[c] < 0) {
      return Violation{Property::kConservation,
                       scenario_.containers[c].name + " width below zero"};
    }
    if (s.fenced[c] &&
        (s.width[c] > 0 ||
         s.fsm[c] != static_cast<std::uint8_t>(CmState::kOffline))) {
      return Violation{Property::kFenceResurrect,
                       scenario_.containers[c].name +
                           " owns nodes or re-entered the protocol after "
                           "being fenced"};
    }
    if (s.timeout_pending[c]) {
      return Violation{
          Property::kTimeoutOrphan,
          scenario_.containers[c].name +
              ": control round timed out and was never retried or "
              "escalated (IOC105 property)"};
    }
  }
  if (sum != total_) {
    std::ostringstream msg;
    msg << "node-count conservation violated: widths+spares+escrow = " << sum
        << ", staging allocation = " << total_
        << " (a node is owned twice or lost)";
    return Violation{Property::kConservation, msg.str()};
  }
  for (std::size_t m = 0; m < kMembers && scenario_.trade; ++m) {
    if (s.prepare_count[m] > 1 || s.apply_count[m] > 1) {
      return Violation{Property::kAtMostOnce,
                       scenario_.containers[m].name +
                           ": trade operation prepared or applied more than "
                           "once for the same round token"};
    }
  }
  return std::nullopt;
}

std::optional<Violation> Model::stuck(const State& s) const {
  const std::size_t n = num_containers();
  for (std::size_t c = 0; c < n; ++c) {
    const Conv conv = static_cast<Conv>(s.conv[c]);
    if (conv == Conv::kPending || conv == Conv::kAwaiting ||
        conv == Conv::kAbandoned) {
      return Violation{Property::kStuck,
                       scenario_.containers[c].name +
                           ": scheduled control conversation never "
                           "completed (liveness)"};
    }
    if (s.fsm[c] != static_cast<std::uint8_t>(CmState::kIdle) &&
        s.fsm[c] != static_cast<std::uint8_t>(CmState::kOffline)) {
      return Violation{Property::kStuck,
                       scenario_.containers[c].name +
                           ": manager FSM parked mid-conversation in state " +
                           core::cm_state_name(
                               static_cast<CmState>(s.fsm[c]))};
    }
  }
  if (s.txn_phase >= static_cast<std::uint8_t>(TxnPhase::kBegin) &&
      s.txn_phase <= static_cast<std::uint8_t>(TxnPhase::kDecide)) {
    return Violation{Property::kStuck,
                     "transaction round never terminated (liveness)"};
  }
  return std::nullopt;
}

bool Model::action_safe(const State& s, const Action& a) const {
  // "Safe" = invisible to every checked property AND confined to the
  // action's component: no fault-budget spend, no shared-ledger move, no
  // round advance, no fence. Such actions commute with every action of
  // every other component, so exploring only them from this state preserves
  // reachability of all (stable) violations.
  //
  // Control-plane actions on a trade member are NOT safe while the trade
  // can still deliver a vote/decide message to it: they move the member's
  // FSM in and out of idle, and idleness gates whether that delivery emits
  // its trade events (and, under bugs.stale_timeout, arms the stale timer).
  // That is an enabling-dependence with an action the coordinator can make
  // runnable without any move of this component, so ample condition C1
  // fails if these were treated as safe (a pruned interleaving could be the
  // only one reaching a violation). Once the member's decision guard is set
  // every further round message to it is refused without touching the FSM
  // or ledger, and the control actions become independent again.
  const auto member_trade_live = [&](std::size_t c) {
    return scenario_.trade && c < kMembers &&
           s.txn_phase != static_cast<std::uint8_t>(TxnPhase::kNever) &&
           !s.decided[c];
  };
  switch (a.kind) {
    case ActionKind::kStartConv:
    case ActionKind::kDeliverReq:
    case ActionKind::kDeliverRep:
      return !member_trade_live(a.target);
    case ActionKind::kStartTxn:
      return true;
    case ActionKind::kStaleTimeout:
      return false;  // visible: it creates the violation being checked
    case ActionKind::kCmTimeout:
      // Retry is component-local; a fence is not.
      return s.conv_retries[a.target] > 0 && !member_trade_live(a.target);
    case ActionKind::kDeliverTreq:
      // Begin is a pure ack; vote/decide move the shared ledger.
      return a.target % kTxnRounds == kBegin;
    case ActionKind::kDeliverTrep:
      // Completing a gather advances the round machinery (and possibly the
      // ledger, via recovery); mid-gather bookkeeping is coordinator-local.
      return s.pending > 1 ||
             a.target % kTxnRounds !=
                 static_cast<std::size_t>(s.txn_phase) -
                     static_cast<std::size_t>(TxnPhase::kBegin);
    case ActionKind::kTxnTimeout:
      return s.round_retries > 0;
    default:
      return false;  // drops/dups/crashes spend the adversary budget
  }
}

int Model::component_of(const Action& a) const {
  switch (a.kind) {
    case ActionKind::kStartTxn:
    case ActionKind::kTxnTimeout:
    case ActionKind::kDeliverTrep:
    case ActionKind::kDropTrep:
    case ActionKind::kDupTrep:
      return static_cast<int>(kMaxContainers);  // coordinator component
    case ActionKind::kDeliverTreq:
    case ActionKind::kDropTreq:
    case ActionKind::kDupTreq:
      return static_cast<int>(a.target / kTxnRounds);
    default:
      return static_cast<int>(a.target);
  }
}

void Model::ample(const State& s, std::vector<Action>* out) const {
  std::vector<Action> all;
  enabled(s, &all);
  // Group by component; pick the first component whose enabled actions are
  // all safe. All checked properties are stable (once violated they stay
  // violated along every extension), so one representative interleaving per
  // commuting class is enough. The state graph is acyclic (every action
  // strictly consumes retries, budgets, or one-shot milestones), so the
  // classic ample-set cycle condition holds trivially; the checker still
  // verifies acyclicity at run time.
  for (int comp = 0; comp <= static_cast<int>(kMaxContainers); ++comp) {
    bool any = false;
    bool all_safe = true;
    for (const Action& a : all) {
      if (component_of(a) != comp) continue;
      any = true;
      if (!action_safe(s, a)) {
        all_safe = false;
        break;
      }
    }
    if (any && all_safe) {
      out->clear();
      for (const Action& a : all) {
        if (component_of(a) == comp) out->push_back(a);
      }
      return;
    }
  }
  *out = std::move(all);
}

}  // namespace ioc::verify
