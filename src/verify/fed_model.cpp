#include "verify/fed_model.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace ioc::verify {

namespace {

constexpr char kTradeId[] = "trade#1";

const char* member_name(std::size_t m) {
  return m == 0 ? "donor" : "recipient";
}

const char* round_name(std::size_t r) {
  return r == kVoteRound ? "vote" : "decide";
}

}  // namespace

const char* fed_action_name(FedActionKind k) {
  switch (k) {
    case FedActionKind::kStart:      return "start-trade";
    case FedActionKind::kDeliverReq: return "deliver-req";
    case FedActionKind::kDropReq:    return "drop-req";
    case FedActionKind::kDupReq:     return "dup-req";
    case FedActionKind::kDeliverRep: return "deliver-rep";
    case FedActionKind::kDropRep:    return "drop-rep";
    case FedActionKind::kDupRep:     return "dup-rep";
    case FedActionKind::kTimeout:    return "gather-timeout";
    case FedActionKind::kCrash:      return "crash";
  }
  return "?";
}

std::string FedState::encode() const {
  std::string out;
  out.reserve(32);
  const auto put = [&out](int v) { out.push_back(static_cast<char>(v)); };
  put(donor_spares);
  put(recipient_spares);
  put(escrow);
  put(phase);
  put((commit ? 1 : 0) | (fenced ? 2 : 0));
  put(retries);
  for (std::size_t m = 0; m < kFedMembers; ++m) {
    put((crashed[m] ? 1 : 0) | (voted[m] ? 2 : 0) | (voted_yes[m] ? 4 : 0) |
        (applied[m] ? 8 : 0) | (answered[m] ? 16 : 0));
    for (std::size_t r = 0; r < kFedRounds; ++r) {
      put(req_in[m][r]);
      put(rep_in[m][r]);
    }
  }
  put(drops);
  put(dups);
  put(crashes);
  return out;
}

FedState FedModel::initial() const {
  FedState s;
  s.donor_spares = static_cast<std::int8_t>(scenario_.donor_spares);
  s.recipient_spares = static_cast<std::int8_t>(scenario_.recipient_spares);
  s.phase = static_cast<std::uint8_t>(FedPhase::kIdle);
  return s;
}

void FedModel::emit(FedStep* step, const char* type, int delta) const {
  if (step == nullptr) return;
  core::ControlTraceEvent ev;
  ev.container = kTradeId;
  ev.type = type;
  ev.to_cm = false;
  ev.delta = delta;
  step->events.push_back(std::move(ev));
}

void FedModel::enabled(const FedState& s,
                       std::vector<FedAction>* out) const {
  out->clear();
  const auto phase = static_cast<FedPhase>(s.phase);
  if (phase == FedPhase::kIdle) {
    out->push_back({FedActionKind::kStart, 0});
    return;
  }
  // Wire actions: every in-flight copy can be delivered, and dropped or
  // amplified while budget remains.
  for (std::size_t m = 0; m < kFedMembers; ++m) {
    for (std::size_t r = 0; r < kFedRounds; ++r) {
      const auto t = static_cast<std::uint8_t>(m * kFedRounds + r);
      if (s.req_in[m][r] > 0) {
        out->push_back({FedActionKind::kDeliverReq, t});
        if (s.drops < scenario_.faults.drops)
          out->push_back({FedActionKind::kDropReq, t});
        if (s.dups < scenario_.faults.dups && s.req_in[m][r] < 2)
          out->push_back({FedActionKind::kDupReq, t});
      }
      if (s.rep_in[m][r] > 0) {
        out->push_back({FedActionKind::kDeliverRep, t});
        if (s.drops < scenario_.faults.drops)
          out->push_back({FedActionKind::kDropRep, t});
        if (s.dups < scenario_.faults.dups && s.rep_in[m][r] < 2)
          out->push_back({FedActionKind::kDupRep, t});
      }
    }
  }
  if (phase == FedPhase::kVote || phase == FedPhase::kDecide) {
    // The gather deadline fires only for a member with nothing in flight —
    // message lost or member dead — modeling deadlines long against the
    // wire latency (same discipline as verify/model.h).
    const std::size_t r =
        phase == FedPhase::kVote ? kVoteRound : kDecideRound;
    for (std::size_t m = 0; m < kFedMembers; ++m) {
      if (!s.answered[m] && s.req_in[m][r] == 0 && s.rep_in[m][r] == 0) {
        out->push_back({FedActionKind::kTimeout, 0});
        break;
      }
    }
    for (std::size_t m = 0; m < kFedMembers; ++m) {
      if (!s.crashed[m] && s.crashes < scenario_.faults.crashes)
        out->push_back({FedActionKind::kCrash, static_cast<std::uint8_t>(m)});
    }
  }
}

void FedModel::settle(FedState& st, FedStep* step) const {
  // The root's in-process recovery pass (fed::Root::run_trade): repair the
  // ledger side of every member that never applied the decision, mark both
  // settled so late deliveries are recognized as duplicates, and emit the
  // trade's terminal marker. Under the leak_escrow mutation a fenced trade
  // skips the donor-side repair and the marker — the seeded IOC106 bug.
  const bool leak = scenario_.leak_escrow && st.fenced;
  const int count = scenario_.count;
  for (std::size_t m = 0; m < kFedMembers; ++m) {
    if (!st.applied[m]) {
      const bool skip = leak && m == 0;
      if (!skip) {
        if (st.commit && m == 1) {
          st.escrow = static_cast<std::int8_t>(st.escrow - count);
          st.recipient_spares =
              static_cast<std::int8_t>(st.recipient_spares + count);
        } else if (!st.commit && m == 0 && st.voted_yes[0]) {
          st.escrow = static_cast<std::int8_t>(st.escrow - count);
          st.donor_spares = static_cast<std::int8_t>(st.donor_spares + count);
        }
      }
    }
    st.applied[m] = true;
  }
  if (!leak) {
    emit(step,
         st.fenced ? core::kMarkTradeFence
                   : (st.commit ? core::kMarkTradeCommit
                                : core::kMarkTradeAbort),
         st.commit && !st.fenced ? scenario_.count : 0);
  }
  st.phase = static_cast<std::uint8_t>(FedPhase::kDone);
}

FedState FedModel::apply(const FedState& s, const FedAction& a,
                         FedStep* step) const {
  FedState st = s;
  const std::size_t m = a.target / kFedRounds;
  const std::size_t r = a.target % kFedRounds;
  const int count = scenario_.count;
  std::ostringstream label;

  switch (a.kind) {
    case FedActionKind::kStart: {
      st.phase = static_cast<std::uint8_t>(FedPhase::kVote);
      st.retries = static_cast<std::int8_t>(scenario_.retries);
      for (std::size_t i = 0; i < kFedMembers; ++i)
        st.req_in[i][kVoteRound] = 1;
      emit(step, core::kMarkTradeBegin, count);
      label << "root opens the trade, vote requests to both shards";
      break;
    }
    case FedActionKind::kDeliverReq:
    case FedActionKind::kDupReq: {
      if (a.kind == FedActionKind::kDeliverReq) {
        --st.req_in[m][r];
      } else {
        ++st.dups;  // delivers one copy, leaves the original in flight
      }
      label << "deliver " << round_name(r) << " request to "
            << member_name(m);
      if (a.kind == FedActionKind::kDupReq) label << " (duplicate)";
      if (st.crashed[m]) {
        label << " [lost: crashed]";
        break;
      }
      if (r == kVoteRound) {
        if (st.applied[m]) {
          // Decision already recorded for this txn: the member guard
          // refuses the stale vote (classify_vote kStaleNo) — NO reply,
          // and crucially no new escrow.
          ++st.rep_in[m][kVoteRound];
          label << " -> stale NO";
        } else if (st.voted[m]) {
          ++st.rep_in[m][kVoteRound];  // replay the cached reply
          label << " -> replayed vote";
        } else {
          st.voted[m] = true;
          if (m == 0) {
            if (st.donor_spares >= count) {
              st.donor_spares =
                  static_cast<std::int8_t>(st.donor_spares - count);
              st.escrow = static_cast<std::int8_t>(st.escrow + count);
              st.voted_yes[0] = true;
              label << " -> YES, " << count << " node(s) escrowed";
            } else {
              label << " -> NO (pool dry)";
            }
          } else {
            st.voted_yes[1] = true;
            label << " -> YES";
          }
          ++st.rep_in[m][kVoteRound];
        }
      } else {
        if (!st.applied[m]) {
          st.applied[m] = true;
          if (st.commit && m == 1) {
            st.escrow = static_cast<std::int8_t>(st.escrow - count);
            st.recipient_spares =
                static_cast<std::int8_t>(st.recipient_spares + count);
          } else if (!st.commit && m == 0 && st.voted_yes[0]) {
            st.escrow = static_cast<std::int8_t>(st.escrow - count);
            st.donor_spares =
                static_cast<std::int8_t>(st.donor_spares + count);
          }
          label << " -> applied " << (st.commit ? "COMMIT" : "ABORT");
        } else {
          label << " -> duplicate decision, ack only";
        }
        ++st.rep_in[m][kDecideRound];
      }
      break;
    }
    case FedActionKind::kDropReq: {
      --st.req_in[m][r];
      ++st.drops;
      label << "drop " << round_name(r) << " request to " << member_name(m);
      break;
    }
    case FedActionKind::kDeliverRep:
    case FedActionKind::kDupRep: {
      if (a.kind == FedActionKind::kDeliverRep) {
        --st.rep_in[m][r];
      } else {
        ++st.dups;
      }
      label << "deliver " << round_name(r) << " reply from "
            << member_name(m);
      if (a.kind == FedActionKind::kDupRep) label << " (duplicate)";
      const auto phase = static_cast<FedPhase>(st.phase);
      const std::size_t gather_round =
          phase == FedPhase::kVote ? kVoteRound : kDecideRound;
      const bool gathering =
          phase == FedPhase::kVote || phase == FedPhase::kDecide;
      if (!gathering || r != gather_round || st.answered[m]) {
        label << " [stale, ignored]";
        break;
      }
      st.answered[m] = true;
      if (st.answered[0] && st.answered[1]) {
        if (phase == FedPhase::kVote) {
          st.commit = st.voted_yes[0] && st.voted_yes[1];
          st.phase = static_cast<std::uint8_t>(FedPhase::kDecide);
          st.retries = static_cast<std::int8_t>(scenario_.retries);
          st.answered[0] = st.answered[1] = false;
          for (std::size_t i = 0; i < kFedMembers; ++i)
            st.req_in[i][kDecideRound] = 1;
          label << "; votes in, decision "
                << (st.commit ? "COMMIT" : "ABORT")
                << ", decide requests out";
        } else {
          label << "; decide acks in, trade settles";
          settle(st, step);
        }
      }
      break;
    }
    case FedActionKind::kDropRep: {
      --st.rep_in[m][r];
      ++st.drops;
      label << "drop " << round_name(r) << " reply from " << member_name(m);
      break;
    }
    case FedActionKind::kTimeout: {
      const auto phase = static_cast<FedPhase>(st.phase);
      const std::size_t gr =
          phase == FedPhase::kVote ? kVoteRound : kDecideRound;
      emit(step, core::kMarkTimeout, 0);
      if (st.retries > 0) {
        --st.retries;
        emit(step, core::kMarkRetry, 0);
        label << round_name(gr) << " gather timeout, resend to unanswered";
        for (std::size_t i = 0; i < kFedMembers; ++i) {
          if (!st.answered[i] && st.req_in[i][gr] == 0 &&
              st.rep_in[i][gr] == 0) {
            st.req_in[i][gr] = 1;
          }
        }
      } else {
        label << round_name(gr)
              << " gather exhausted its ladder, trade fenced";
        st.fenced = true;
        if (phase == FedPhase::kVote) st.commit = false;
        settle(st, step);
      }
      break;
    }
    case FedActionKind::kCrash: {
      st.crashed[a.target] = true;
      ++st.crashes;
      label << "crash " << member_name(a.target) << " shard";
      break;
    }
  }

  if (step != nullptr) {
    step->action = a;
    step->label = label.str();
  }
  return st;
}

std::optional<Violation> FedModel::check(const FedState& s) const {
  const int total =
      s.donor_spares + s.recipient_spares + s.escrow;
  if (total != scenario_.total_nodes() || s.donor_spares < 0 ||
      s.recipient_spares < 0 || s.escrow < 0) {
    std::ostringstream msg;
    msg << "ledger off: donor=" << int(s.donor_spares)
        << " recipient=" << int(s.recipient_spares)
        << " escrow=" << int(s.escrow) << ", expected total "
        << scenario_.total_nodes();
    return Violation{Property::kConservation, msg.str()};
  }
  return std::nullopt;
}

std::optional<Violation> FedModel::stuck(const FedState& s) const {
  if (static_cast<FedPhase>(s.phase) != FedPhase::kDone) {
    return Violation{Property::kStuck,
                     "trade quiesced without reaching a decision"};
  }
  if (s.escrow != 0) {
    std::ostringstream msg;
    msg << int(s.escrow)
        << " node(s) left in escrow at quiescence — counted by no "
           "shard's ledger (the IOC106 invariant)";
    return Violation{Property::kOrphanEscrow, msg.str()};
  }
  return std::nullopt;
}

FedCheckReport run_fed_check(const FedModel& model, std::size_t max_states) {
  const auto t0 = std::chrono::steady_clock::now();
  FedCheckReport rep;

  std::unordered_map<std::string, std::uint32_t> visited;
  std::vector<std::pair<std::uint32_t, FedAction>> parent;
  std::deque<std::pair<FedState, std::size_t>> frontier;  // state, depth

  const FedState init = model.initial();
  visited.emplace(init.encode(), 0);
  parent.push_back({0, FedAction{}});
  frontier.push_back({init, 0});
  rep.states = 1;

  std::vector<FedAction> acts;
  std::uint32_t id_of_front = 0;
  std::optional<std::uint32_t> bad_id;
  // BFS: ids are assigned in discovery order, and the frontier pops in the
  // same order, so the front's id is a running counter.
  while (!frontier.empty()) {
    const auto [s, depth] = frontier.front();
    frontier.pop_front();
    const std::uint32_t sid = id_of_front++;
    rep.depth = std::max(rep.depth, depth);

    if (auto v = model.check(s)) {
      rep.violation = v;
      bad_id = sid;
      break;
    }
    model.enabled(s, &acts);
    if (acts.empty()) {
      ++rep.terminals;
      if (auto v = model.stuck(s)) {
        rep.violation = v;
        bad_id = sid;
        break;
      }
      continue;
    }
    for (const FedAction& a : acts) {
      const FedState next = model.apply(s, a, nullptr);
      ++rep.edges;
      const auto [it, inserted] =
          visited.emplace(next.encode(),
                          static_cast<std::uint32_t>(parent.size()));
      if (!inserted) continue;
      parent.push_back({sid, a});
      frontier.push_back({next, depth + 1});
      ++rep.states;
      if (rep.states >= max_states) {
        rep.capped = true;
        frontier.clear();
        break;
      }
    }
    if (rep.capped) break;
  }

  if (bad_id.has_value()) {
    std::vector<FedAction> path;
    std::uint32_t id = *bad_id;
    while (id != 0) {
      path.push_back(parent[id].second);
      id = parent[id].first;
    }
    std::reverse(path.begin(), path.end());
    FedState s = model.initial();
    for (const FedAction& a : path) {
      FedStep step;
      s = model.apply(s, a, &step);
      rep.counterexample.push_back(std::move(step));
    }
    for (auto& step : rep.counterexample) {
      for (auto& ev : step.events) {
        ev.at = static_cast<des::SimTime>(rep.trace.size() + 1);
        rep.trace.push_back(ev);
      }
    }
  }

  rep.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return rep;
}

}  // namespace ioc::verify
