#include "verify/checker.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>

namespace ioc::verify {

namespace {

/// Rebuild the shortest path to `id` from the BFS parent links, then replay
/// it through the model to recover the per-step labels and trace events.
void reconstruct(const Model& model,
                 const std::vector<std::pair<std::uint32_t, Action>>& parent,
                 std::uint32_t id, CheckReport* rep) {
  std::vector<Action> path;
  while (id != 0) {
    path.push_back(parent[id].second);
    id = parent[id].first;
  }
  std::reverse(path.begin(), path.end());
  State s = model.initial();
  for (const Action& a : path) {
    Step step;
    s = model.apply(s, a, &step);
    rep->counterexample.push_back(std::move(step));
  }
  for (auto& step : rep->counterexample) {
    for (auto& ev : step.events) {
      ev.at = static_cast<des::SimTime>(rep->trace.size() + 1);
      rep->trace.push_back(ev);
    }
  }
}

}  // namespace

CheckReport run_check(const Model& model, const CheckOptions& opts) {
  const auto started = std::chrono::steady_clock::now();
  CheckReport rep;
  const std::size_t n = model.num_containers();

  std::unordered_map<std::string, std::uint32_t> visited;
  std::vector<std::pair<std::uint32_t, Action>> parent;
  // Frontier entries carry the full state so expansion never has to decode
  // or replay; the visited set only ever stores the byte encoding.
  std::deque<std::pair<State, std::uint32_t>> frontier;

  const auto finish = [&](std::optional<Violation> v, std::uint32_t id) {
    rep.violation = std::move(v);
    reconstruct(model, parent, id, &rep);
    rep.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
  };

  const State init = model.initial();
  visited.emplace(init.encode(n), 0);
  parent.emplace_back(0u, Action{});
  rep.states = 1;
  if (auto v = model.check(init)) {
    finish(std::move(v), 0);
    return rep;
  }
  frontier.emplace_back(init, 0u);

  std::vector<Action> actions;
  std::size_t layer = frontier.size();
  std::size_t next_layer = 0;
  while (!frontier.empty()) {
    if (layer == 0) {
      layer = next_layer;
      next_layer = 0;
      ++rep.depth;
    }
    --layer;
    const auto [s, id] = frontier.front();
    frontier.pop_front();

    if (opts.por) {
      model.ample(s, &actions);
    } else {
      model.enabled(s, &actions);
    }
    if (actions.empty()) {
      ++rep.terminals;
      if (auto v = model.stuck(s)) {
        finish(std::move(v), id);
        return rep;
      }
      continue;
    }
    for (const Action& a : actions) {
      const State succ = model.apply(s, a, nullptr);
      ++rep.edges;
      const auto next_id = static_cast<std::uint32_t>(parent.size());
      const auto [it, fresh] = visited.emplace(succ.encode(n), next_id);
      if (!fresh) continue;
      parent.emplace_back(id, a);
      ++rep.states;
      if (auto v = model.check(succ)) {
        finish(std::move(v), next_id);
        return rep;
      }
      if (rep.states >= opts.max_states) {
        rep.capped = true;
        rep.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - started)
                          .count();
        return rep;
      }
      frontier.emplace_back(succ, next_id);
      ++next_layer;
    }
  }
  rep.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return rep;
}

}  // namespace ioc::verify
