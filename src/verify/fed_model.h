// The federation verification model: a finite abstraction of one
// cross-shard resource trade — two shards (member 0 the donor, member 1
// the recipient) and the thin root coordinator of src/fed/root.cpp —
// explored exhaustively by its own small BFS (fed_check).
//
// The model follows the runtime's recovery contract exactly:
//
//   * the donor's VOTE_YES moves `count` nodes from its spare pool into
//     escrow; only a decision moves them onward (recipient pool on commit,
//     back to the donor on abort);
//   * vote and decide are gather rounds with bounded retries; a round that
//     exhausts its ladder fences the trade, and the root then settles both
//     members in-process — repairing the ledger side of any member that
//     never applied the decision — before emitting the terminal marker;
//   * the adversary may drop and duplicate in-flight messages and crash
//     members, up to a budget per class (asynchrony is interleaving, as in
//     verify/model.h).
//
// Checked properties: node-count conservation (donor + recipient + escrow
// constant at every state), no orphaned escrow at quiescence
// (Property::kOrphanEscrow — the IOC106 invariant), and termination of the
// started trade. Every transition emits the same TRADE_* / TIMEOUT / RETRY
// control-trace markers the runtime root logs, so a counterexample replays
// through lint::check_trace and trips IOC106.
//
// The `leak_escrow` mutation re-introduces the bug the recovery pass
// exists to prevent (mirroring fed::Root::Options::mutate_leak_escrow): a
// fenced trade skips the donor-side settle and its terminal marker. The
// checker proves it orphans escrow and the lint replayer flags the trace.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "verify/model.h"

namespace ioc::verify {

/// Trade participants: 0 = donor shard, 1 = recipient shard.
inline constexpr std::size_t kFedMembers = 2;
/// Wire gather rounds (vote, decide). Begin is abstracted into the trade
/// start: it carries no ledger effect, so modeling its loss adds only
/// states the vote round's loss already covers.
inline constexpr std::size_t kFedRounds = 2;
inline constexpr std::size_t kVoteRound = 0;
inline constexpr std::size_t kDecideRound = 1;

struct FedScenario {
  /// Spare nodes per shard pool at trade start.
  int donor_spares = 2;
  int recipient_spares = 1;
  /// Nodes the trade moves donor -> recipient.
  int count = 1;
  /// Resend attempts per gather round before the trade is fenced.
  int retries = 1;
  FaultBudget faults;  ///< drops / dups / crashes, as in verify/model.h
  /// Mutation: a fenced trade skips the donor-side recovery settle and the
  /// terminal marker (the historical escrow-leak bug; IOC106).
  bool leak_escrow = false;

  int total_nodes() const { return donor_spares + recipient_spares; }
};

enum class FedPhase : std::uint8_t {
  kIdle = 0,  ///< trade not started
  kVote,      ///< vote gather in progress
  kDecide,    ///< decision chosen, decide gather in progress
  kDone,      ///< settled (terminal marker emitted, unless leaked)
};

struct FedState {
  std::int8_t donor_spares = 0;
  std::int8_t recipient_spares = 0;
  std::int8_t escrow = 0;
  std::uint8_t phase = 0;  ///< FedPhase
  bool commit = false;     ///< decision, valid in kDecide+
  bool fenced = false;     ///< a gather exhausted its ladder
  std::int8_t retries = 0;
  // Per member.
  bool crashed[kFedMembers] = {};
  bool voted[kFedMembers] = {};      ///< member answered the vote round
  bool voted_yes[kFedMembers] = {};
  bool applied[kFedMembers] = {};    ///< member applied the decision
  bool answered[kFedMembers] = {};   ///< gather got this member's reply
  /// In-flight copies per member and round (root->member, member->root).
  std::uint8_t req_in[kFedMembers][kFedRounds] = {};
  std::uint8_t rep_in[kFedMembers][kFedRounds] = {};
  // Adversary budget spent.
  std::uint8_t drops = 0;
  std::uint8_t dups = 0;
  std::uint8_t crashes = 0;

  std::string encode() const;
};

enum class FedActionKind : std::uint8_t {
  kStart,       ///< root opens the trade: TRADE_BEGIN, vote reqs out
  kDeliverReq,  ///< deliver one root->member copy (target = m*rounds+r)
  kDropReq,     ///< adversary drops one copy (budget)
  kDupReq,      ///< deliver a copy, keep one in flight (budget)
  kDeliverRep,  ///< deliver one member->root copy
  kDropRep,
  kDupRep,
  kTimeout,     ///< gather deadline: RETRY resend, or fence + settle
  kCrash,       ///< adversary crashes member m (budget)
};

const char* fed_action_name(FedActionKind k);

struct FedAction {
  FedActionKind kind{};
  /// Member index for kCrash; member * kFedRounds + round for the wire
  /// actions; unused otherwise.
  std::uint8_t target = 0;
};

/// One applied action, for counterexample display (same Step vocabulary as
/// verify/model.h so ioc_verify shares its printing and lint replay).
struct FedStep {
  FedAction action;
  std::string label;
  std::vector<core::ControlTraceEvent> events;
};

class FedModel {
 public:
  explicit FedModel(FedScenario s) : scenario_(s) {}

  const FedScenario& scenario() const { return scenario_; }

  FedState initial() const;
  void enabled(const FedState& s, std::vector<FedAction>* out) const;
  FedState apply(const FedState& s, const FedAction& a, FedStep* step) const;
  /// Safety check on every state; nullopt when the invariants hold.
  std::optional<Violation> check(const FedState& s) const;
  /// Quiescence check for states with no enabled action.
  std::optional<Violation> stuck(const FedState& s) const;

 private:
  void settle(FedState& st, FedStep* step) const;
  void emit(FedStep* step, const char* type, int delta) const;

  FedScenario scenario_;
};

struct FedCheckReport {
  std::size_t states = 0;
  std::size_t edges = 0;
  std::size_t terminals = 0;
  std::size_t depth = 0;
  double seconds = 0;
  bool capped = false;
  std::optional<Violation> violation;
  std::vector<FedStep> counterexample;  ///< shortest path (BFS)
  /// Counterexample control-trace, `at` = 1-based event index — ready for
  /// lint::check_trace (the IOC106 replay).
  std::vector<core::ControlTraceEvent> trace;

  bool ok() const { return !violation.has_value() && !capped; }
};

FedCheckReport run_fed_check(const FedModel& model,
                             std::size_t max_states = 20u * 1000 * 1000);

}  // namespace ioc::verify
