// The verification model: a finite, explicit-state abstraction of the
// control plane that `ioc_verify` explores exhaustively. It is the product
// automaton of
//
//   * one Fig. 3 ProtocolFsm per container (the exact table of
//     core/protocol_fsm.h — the model advances real ProtocolFsm instances,
//     so a table edit changes the model and the runtime checker together),
//   * the GM-side conversation machinery of PR 4 (per-round retries with
//     TIMEOUT / RETRY / ESCALATE markers, fencing on exhaustion),
//   * the D2T round/token machinery of txn/d2t_model.h (begin / vote /
//     decide gathers with per-member at-most-once guards, bounded retries,
//     escalation to abort, sub-coordinator recovery), driving a one-node
//     resource trade donor -> recipient through the escrow semantics of
//     core/trade.cpp,
//   * a bounded adversarial network mirroring fault::Injector's classes:
//     each in-flight message can be dropped or duplicated and each
//     container crashed, up to a configurable budget per class.
//
// Asynchrony is modeled by interleaving: a "delayed" message is simply one
// whose delivery action the scheduler defers, so the bounded budgets plus
// free interleaving cover drop/duplicate/delay/crash adversaries.
//
// Every transition optionally emits core::ControlTraceEvent records — the
// same vocabulary the GlobalManager logs — so a counterexample path is a
// control trace that lint::check_trace and `ioc_trace` can replay/display.
//
// MutationFlags re-introduce the two PR 4 D2T bugs (stale-timeout round
// abort; shared-token double-counted vote) behind test-only switches; the
// checker proves both produce invariant violations the lint replayer flags.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/protocol.h"
#include "core/protocol_fsm.h"
#include "core/spec.h"

namespace ioc::verify {

/// Containers the model can compose. The state encoding is fixed-width in
/// this bound; scenarios use the first kMaxContainers of a spec.
inline constexpr std::size_t kMaxContainers = 4;
/// Trade participants (donor, recipient).
inline constexpr std::size_t kMembers = 2;
/// D2T gather rounds carried on the wire (begin, vote, decide). Mirrors the
/// phase offsets of txn/d2t_model.h; in-flight copies are tagged with their
/// round so stale traffic of an earlier round can race the current gather
/// exactly the way token-tagged messages do in the runtime.
inline constexpr std::size_t kTxnRounds = 3;

/// Adversary budget, mirroring fault::Injector's per-message classes plus
/// node crashes. "Up to": the scheduler may also spend none of it.
struct FaultBudget {
  std::uint8_t drops = 1;
  std::uint8_t dups = 1;
  std::uint8_t crashes = 1;
};

/// Test-only switches re-introducing the PR 4 D2T bugs in the model.
struct MutationFlags {
  /// A completed round's gather timer is not cancelled; its stale firing is
  /// mistaken for the next conversation's deadline and the GM abandons that
  /// conversation without RETRY or ESCALATE (the IOC105 property).
  bool stale_timeout = false;
  /// The vote gather does not deduplicate replies per member, so a
  /// duplicated YES can stand in for a member that never voted.
  bool shared_token = false;
};

struct ContainerInit {
  std::string name;
  int width = 2;
  /// Run one QUERY_NEEDS management conversation on this container.
  bool query = true;
};

struct Scenario {
  std::vector<ContainerInit> containers;
  /// Total staging nodes. 0 = sum of container widths (no spares).
  int staging_nodes = 0;
  /// Resend attempts per GM control conversation / per D2T gather round.
  int cm_retries = 1;
  int txn_retries = 1;
  /// Run a one-node D2T trade containers[0] -> containers[1].
  bool trade = true;
  /// Also explore deadlines racing in-flight traffic (a timeout firing
  /// while the answer is already on the wire). Default off: deadlines fire
  /// only for rounds with nothing in flight (message lost / endpoint dead),
  /// which models deadlines long against the message latency; a racing
  /// timeout adds only a spurious resend, which the duplicate budget
  /// already covers. Enabling it explores the full race at a large state
  /// cost.
  bool timeout_races = false;
  FaultBudget faults;
  MutationFlags bugs;

  int total_nodes() const;

  /// The acceptance scenario: two 2-node containers, a trade, one query
  /// conversation each, 1 drop + 1 duplicate + 1 crash.
  static Scenario two_container();
  /// Derive a scenario from a pipeline spec: the first `max_containers`
  /// online containers at their initial widths, spares from staging_nodes,
  /// a trade between the first two (when the donor has a node to give).
  static Scenario from_spec(const core::PipelineSpec& spec,
                            std::size_t max_containers = 2);
};

/// GM-side conversation status per container.
enum class Conv : std::uint8_t {
  kNone = 0,      ///< no conversation scripted (or fenced before start)
  kPending,       ///< scripted, not started yet
  kAwaiting,      ///< request sent, reply or timeout owed
  kDone,          ///< completed (reply received, or fenced by escalation)
  kAbandoned,     ///< bug path: given up without RETRY/ESCALATE
};

/// D2T transaction progress.
enum class TxnPhase : std::uint8_t {
  kIdle = 0,   ///< not started
  kBegin,
  kVote,
  kDecide,
  kDone,       ///< decided + sub-coordinator recovery applied
  kNever,      ///< scenario runs no trade
};

/// One model state. Fixed-width POD-style fields so encode() is a stable
/// byte string usable as the visited-set key.
struct State {
  // Per container.
  std::uint8_t fsm[kMaxContainers] = {};        ///< core::CmState
  std::int8_t width[kMaxContainers] = {};
  bool fenced[kMaxContainers] = {};
  bool crashed[kMaxContainers] = {};
  std::uint8_t conv[kMaxContainers] = {};       ///< Conv
  std::int8_t conv_retries[kMaxContainers] = {};
  bool timeout_pending[kMaxContainers] = {};    ///< TIMEOUT owed RETRY/ESCALATE
  bool stale_timer[kMaxContainers] = {};        ///< bug: uncancelled timer armed
  std::uint8_t req_in[kMaxContainers] = {};     ///< GM->CM copies in flight
  std::uint8_t rep_in[kMaxContainers] = {};     ///< CM->GM copies in flight

  // D2T trade (members 0 = donor = containers[0], 1 = recipient).
  std::uint8_t txn_phase = 0;                   ///< TxnPhase
  std::int8_t round_retries = 0;
  bool escalated = false;
  bool commit = false;                          ///< decision, valid in kDecide+
  /// In-flight copies per member and round (the round tag stands in for the
  /// runtime's round token: gathers ignore replies of other rounds, members
  /// refuse rounds their decision guard already supersedes).
  std::uint8_t treq_in[kMembers][kTxnRounds] = {};
  std::uint8_t trep_in[kMembers][kTxnRounds] = {};
  bool answered[kMembers] = {};
  std::uint8_t pending = 0;                     ///< unanswered members
  std::uint8_t yes_count = 0;                   ///< vote round tally
  bool voted[kMembers] = {};
  bool voted_yes[kMembers] = {};
  bool decided[kMembers] = {};
  bool prepared[kMembers] = {};
  bool finished[kMembers] = {};
  std::uint8_t prepare_count[kMembers] = {};    ///< at-most-once audit
  std::uint8_t apply_count[kMembers] = {};

  // Shared ledger + adversary budget.
  std::int8_t spares = 0;
  std::int8_t escrow = 0;
  std::uint8_t drops = 0;
  std::uint8_t dups = 0;
  std::uint8_t crashes = 0;

  std::string encode(std::size_t n_containers) const;
};

enum class ActionKind : std::uint8_t {
  // Duplicate faults are folded into delivery: a kDup* action delivers one
  // copy and leaves another in flight (budget). A standalone "add a copy"
  // action would only reach states that spend more budget for the same
  // effect — dominated, since unspent budget strictly adds adversary moves.
  kStartConv,     ///< GM opens the QUERY_NEEDS conversation on container c
  kDeliverReq,    ///< network delivers one GM->CM request copy
  kDropReq,       ///< adversary drops one request copy (budget)
  kDupReq,        ///< delivers a request copy, keeps one in flight (budget)
  kDeliverRep,    ///< network delivers one CM->GM reply copy
  kDropRep,
  kDupRep,
  kCmTimeout,     ///< conversation deadline fires: RETRY or ESCALATE
  kStaleTimeout,  ///< bug path: stale timer abandons the conversation
  kCrash,         ///< adversary crashes container c (budget)
  kStartTxn,      ///< coordinator begins the trade transaction
  kDeliverTreq,   ///< delivers one coord->member round message to member m
  kDropTreq,
  kDupTreq,
  kDeliverTrep,   ///< delivers one member->coord reply to the gather
  kDropTrep,
  kDupTrep,
  kTxnTimeout,    ///< gather deadline: resend to unanswered or escalate
};

const char* action_name(ActionKind k);

struct Action {
  ActionKind kind{};
  /// Container index for control-plane actions; member*kTxnRounds+round for
  /// the txn channel actions (kDeliverTreq .. kDupTrep).
  std::uint8_t target = 0;
};

/// What one applied action did, for counterexample display.
struct Step {
  Action action;
  std::string label;
  std::vector<core::ControlTraceEvent> events;
};

/// Violation classes, mapped to the diagnostics the trace replayer raises
/// when the counterexample is replayed through lint::check_trace.
enum class Property {
  kConservation,    ///< node-count conservation / double ownership (IOC103)
  kAtMostOnce,      ///< >1 prepare or >1 decision application per member
  kFenceResurrect,  ///< fenced container owns nodes or left offline again
  kTimeoutOrphan,   ///< TIMEOUT with no RETRY/ESCALATE (IOC105)
  kStuck,           ///< reachable quiescent-violation: work left undone
  kOrphanEscrow,    ///< trade quiesced with escrowed nodes unowned (IOC106)
};

const char* property_name(Property p);

struct Violation {
  Property property{};
  std::string message;
};

class Model {
 public:
  explicit Model(Scenario s);

  const Scenario& scenario() const { return scenario_; }
  std::size_t num_containers() const { return scenario_.containers.size(); }

  State initial() const;

  /// All actions enabled in `s` (the full successor relation).
  void enabled(const State& s, std::vector<Action>* out) const;
  /// A sound ample subset for partial-order reduction: when one component's
  /// enabled actions are all invisible (no shared-ledger or fault-budget
  /// effect) and confined to that component, exploring just that component
  /// from this state preserves every Property above. Falls back to the full
  /// set otherwise.
  void ample(const State& s, std::vector<Action>* out) const;

  /// Apply `a` to `s`. `step`, when non-null, receives the trace events.
  State apply(const State& s, const Action& a, Step* step) const;

  /// Safety check; nullopt when every invariant holds in `s`.
  std::optional<Violation> check(const State& s) const;
  /// Liveness-at-bound check for states with no enabled action: quiescence
  /// means every scripted conversation resolved and the trade decided.
  std::optional<Violation> stuck(const State& s) const;

 private:
  bool emit_ok(const State& s, std::size_t c) const;
  void emit_event(std::size_t c, const char* type, bool to_cm,
                  int delta, Step* step) const;
  void emit_pair(State& st, std::size_t c, const char* req, int delta,
                 Step* step) const;
  void fence(State& st, std::size_t c, Step* step) const;
  void start_round(State& st, TxnPhase phase, Step* step) const;
  void finish_txn(State& st, Step* step) const;
  void deliver_member(State& st, std::size_t m, std::size_t round,
                      Step* step) const;
  void gather(State& st, std::size_t m, std::size_t round, Step* step) const;
  void apply_decision(State& st, std::size_t m, Step* step) const;
  bool action_safe(const State& s, const Action& a) const;
  int component_of(const Action& a) const;

  Scenario scenario_;
  int total_ = 0;
};

}  // namespace ioc::verify
