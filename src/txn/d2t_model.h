// The D2T round structure as an explicit transition model, shared between
// the runtime harness (txn/d2t.cpp) and the model checker (src/verify) the
// same way core/protocol_fsm.h is shared between the GlobalManager and the
// lint trace replayer: one table describes which request message each round
// sends, which reply types answer it, and how the round's token is derived,
// so the implementation and the verifier can never drift apart silently.
//
// Token scheme (the at-most-once machinery hangs off it): every transaction
// draws a base token `kTokenFloor + kTokensPerTxn * txn_counter`, and round
// `p` of that transaction uses `base + p`. Because kTokensPerTxn is larger
// than the number of phases, `token / kTokensPerTxn` recovers the
// transaction id from any round token — the comparison the member-side
// dedupe guards use to tell "retry of this round" from "stale traffic of an
// earlier transaction". Tokens are strictly monotone across transactions,
// which is what makes O(1) per-member guards (latest voted/decided token)
// sufficient: anything older than the recorded token is by construction a
// duplicate or stale, so the guards never need to grow with history.
#pragma once

#include <cstdint>
#include <string>

#include "ev/intern.h"

namespace ioc::txn {

// Round messages (coordinator -> member).
inline constexpr const char* kBeginMsg = "TXN_BEGIN";
inline constexpr const char* kVoteMsg = "TXN_VOTE";
inline constexpr const char* kCommitMsg = "TXN_COMMIT";
inline constexpr const char* kAbortMsg = "TXN_ABORT";
// Replies (member -> coordinator).
inline constexpr const char* kBegunReply = "TXN_BEGUN";
inline constexpr const char* kVoteYesReply = "TXN_VOTE_YES";
inline constexpr const char* kVoteNoReply = "TXN_VOTE_NO";
inline constexpr const char* kFinalReply = "TXN_FINAL";
// Internal gather-deadline marker (never crosses the bus).
inline constexpr const char* kTimeoutMsg = "__txn_timeout__";

// Interned ids of the round vocabulary — what the runtime harness and the
// federation participant loops actually dispatch on.
inline const ev::MessageId kMidBegin = ev::intern_type(kBeginMsg);
inline const ev::MessageId kMidVote = ev::intern_type(kVoteMsg);
inline const ev::MessageId kMidCommit = ev::intern_type(kCommitMsg);
inline const ev::MessageId kMidAbort = ev::intern_type(kAbortMsg);
inline const ev::MessageId kMidBegun = ev::intern_type(kBegunReply);
inline const ev::MessageId kMidVoteYes = ev::intern_type(kVoteYesReply);
inline const ev::MessageId kMidVoteNo = ev::intern_type(kVoteNoReply);
inline const ev::MessageId kMidFinal = ev::intern_type(kFinalReply);
inline const ev::MessageId kMidTimeout = ev::intern_type(kTimeoutMsg);

/// Token block per transaction; must exceed the highest phase offset.
inline constexpr std::uint64_t kTokensPerTxn = 10;
/// First token block (keeps txn tokens disjoint from control-round tokens).
inline constexpr std::uint64_t kTokenFloor = 1000;

/// One gather round of the D2T protocol: the request the coordinator fans
/// out, the replies that legally answer it, and the phase offset added to
/// the transaction's base token.
struct D2tRound {
  const char* request;      ///< coordinator -> member message type
  const char* reply_a;      ///< legal reply type
  const char* reply_b;      ///< alternate legal reply (nullptr = none)
  std::uint64_t phase;      ///< token offset within the txn's block

  ev::MessageId request_id() const { return ev::intern_type(request); }
};

/// The three rounds, in execution order: begin, vote, decide. The decide
/// round appears twice (commit and abort are alternative request types of
/// the same round — same phase offset, same reply).
const D2tRound* d2t_rounds(std::size_t* count);

/// Table lookup: the round driven by request type `sent` (null = unknown).
const D2tRound* d2t_round_for(const std::string& sent);

/// True iff `reply` is a legal reply type for a `sent` round message —
/// derived from the table, used by the gather loop's reply filter.
bool d2t_reply_matches(const std::string& sent, const std::string& reply);
/// Interned-id form of the same test (the hot-path gather filter).
bool d2t_reply_matches(ev::MessageId sent, ev::MessageId reply);

/// True for TXN_COMMIT / TXN_ABORT.
bool d2t_is_decision(const std::string& type);
inline bool d2t_is_decision(ev::MessageId type) {
  return type == kMidCommit || type == kMidAbort;
}

/// Round token of phase `phase` in the transaction numbered `txn` (1-based).
inline std::uint64_t d2t_token(std::uint64_t txn, std::uint64_t phase) {
  return kTokenFloor + kTokensPerTxn * txn + phase;
}

/// Transaction id a round token belongs to. Tokens below the floor (the
/// guards' zero-initialized state, control-round tokens) map to txn 0,
/// below every real 1-based transaction — so "nothing decided yet" never
/// classifies as stale against a live transaction.
inline std::uint64_t d2t_txn_of(std::uint64_t token) {
  if (token < kTokenFloor) return 0;
  return (token - kTokenFloor) / kTokensPerTxn;
}

/// One participant's at-most-once state, extracted from the TxnHarness
/// member loop so every D2T participant role — a trade member inside the
/// harness, a federation shard answering the root's cross-shard trade
/// rounds — classifies retried, duplicated, and stale round traffic
/// identically. The guards are O(1) scalars, not per-txn maps: token
/// monotonicity (above) means the latest voted/decided token subsumes all
/// history, so a soak of millions of transactions keeps participant state
/// constant-size.
struct D2tMemberGuard {
  std::uint64_t voted_token = 0;
  bool voted_yes = false;
  std::uint64_t decided_token = 0;

  enum class VoteAction {
    kStaleNo,  ///< vote for a txn that already decided: NO, do not prepare
    kReplay,   ///< retried/duplicated vote: replay the recorded answer
    kFresh,    ///< first sight: run prepare, then record_vote()
  };
  VoteAction classify_vote(std::uint64_t token) const;
  void record_vote(std::uint64_t token, bool yes);

  enum class DecideAction {
    kAckOnly,  ///< wrong txn (never voted in it) or duplicate: re-ack only
    kApply,    ///< first sight of this decision: apply, then record
  };
  DecideAction classify_decision(std::uint64_t token) const;
  /// Forward-only: also used by coordinator recovery when it applies a
  /// logged decision on a silent participant's behalf.
  void record_decision(std::uint64_t token);

  /// True iff this participant's recorded decision belongs to `txn` — the
  /// coordinator-side recovery test for "did the member apply it itself".
  bool decided_txn(std::uint64_t txn) const {
    return d2t_txn_of(decided_token) == txn;
  }
};

}  // namespace ioc::txn
