#include "txn/d2t.h"

#include <algorithm>

#include "txn/d2t_model.h"
#include "util/log.h"

namespace ioc::txn {

bool TxnHarness::reply_matches(const std::string& sent,
                               const std::string& reply) {
  // Delegates to the shared round table (d2t_model.h) so the verifier's
  // model of legal replies and this runtime filter are one definition.
  return d2t_reply_matches(sent, reply);
}

TxnHarness::TxnHarness(ev::Bus& bus, TxnConfig cfg) : bus_(&bus), cfg_(cfg) {
  auto& cluster = bus.network().cluster();
  const net::NodeId sub_reader_node =
      cluster.size() > 1 ? net::NodeId{1} : net::NodeId{0};
  coord_ = bus.open(0, "txn.coord").id();
  writer_side_.ep = bus.open(0, "txn.sub.writers").id();
  reader_side_.ep = bus.open(sub_reader_node, "txn.sub.readers").id();

  const std::size_t total = cfg.writers + cfg.readers;
  members_.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    const net::NodeId node =
        static_cast<net::NodeId>((i + 2) % cluster.size());
    members_[i].ep = bus.open(node, "txn.member").id();
    if (cfg.failure.participant == static_cast<int>(i)) {
      members_[i].dies_at = cfg.failure.at;
    }
    if (i < cfg.writers) {
      writer_side_.members.push_back(i);
    } else {
      reader_side_.members.push_back(i);
    }
    procs_.push_back(spawn(bus.sim(), member_loop(i)));
  }
}

TxnHarness::~TxnHarness() {
  for (auto& m : members_) bus_->close(m.ep);
  bus_->close(writer_side_.ep);
  bus_->close(reader_side_.ep);
  bus_->close(coord_);
  // The member loops block on their mailboxes; drain the simulator so they
  // observe the closes and finish instead of leaking their frames (see
  // des/process.h lifetime rules).
  auto& sim = bus_->sim();
  while (sim.step()) {
  }
}

void TxnHarness::set_operation(std::size_t index, Operation* op) {
  members_.at(index).op = op;
}

des::Process TxnHarness::member_loop(std::size_t index) {
  const ev::EndpointId my_ep = members_[index].ep;
  while (true) {
    // Re-resolve every iteration: a crash may destroy the endpoint while we
    // were suspended in a post below.
    ev::Endpoint* self = bus_->find(my_ep);
    if (self == nullptr) break;
    auto msg = co_await self->mailbox().get();
    if (!msg.has_value()) break;
    Member& me = members_[index];

    if (msg->type_id == kMidBegin) {
      if (me.dies_at <= Phase::kBegin) me.dead = true;
      if (me.dead) continue;
      // Begin changes no state, so a retried/duplicated begin just elicits
      // another (idempotent) ack.
      ev::Message reply;
      reply.type_id = kMidBegun;
      reply.token = msg->token;
      co_await bus_->post(my_ep, msg->from, std::move(reply));
    } else if (msg->type_id == kMidVote) {
      if (me.dies_at <= Phase::kVote) me.dead = true;
      if (me.dead) continue;
      const auto va = me.guard.classify_vote(msg->token);
      if (va == D2tMemberGuard::VoteAction::kStaleNo) {
        // A delayed vote request for a transaction that already decided
        // (tokens encode txn*10 + phase): preparing now would reserve state
        // nobody will ever commit or roll back. Vote no without preparing.
        ev::Message reply;
        reply.type_id = kMidVoteNo;
        reply.token = msg->token;
        co_await bus_->post(my_ep, msg->from, std::move(reply));
        continue;
      }
      bool yes;
      if (va == D2tMemberGuard::VoteAction::kReplay) {
        // Duplicate/retried vote request: replay the recorded vote instead
        // of running prepare() a second time (at-most-once).
        yes = me.guard.voted_yes;
      } else {
        yes = true;
        if (me.op != nullptr) {
          yes = me.op->prepare();
          me.prepared = yes;
        }
        me.guard.record_vote(msg->token, yes);
      }
      ev::Message reply;
      reply.type_id = yes ? kMidVoteYes : kMidVoteNo;
      reply.token = msg->token;
      co_await bus_->post(my_ep, msg->from, std::move(reply));
    } else if (d2t_is_decision(msg->type_id)) {
      if (me.dies_at <= Phase::kDecide) me.dead = true;
      if (me.dead) continue;
      // The guard folds both rejection cases (decision for a transaction
      // this member never voted in — applying it would commit/abort the
      // WRONG trade's reservation — and a duplicate of an applied decision)
      // into kAckOnly: ack without touching state; the coordinator's
      // recovery pass applies the logged decision where actually needed.
      if (me.guard.classify_decision(msg->token) ==
          D2tMemberGuard::DecideAction::kApply) {
        // First sight of this decision: apply it. Duplicates only re-ack.
        if (me.op != nullptr) {
          if (msg->type_id == kMidCommit) {
            me.op->commit();
          } else if (me.prepared) {
            me.op->abort();
          }
        }
        me.prepared = false;
        me.finished = true;
        me.guard.record_decision(msg->token);
      }
      ev::Message reply;
      reply.type_id = kMidFinal;
      reply.token = msg->token;
      co_await bus_->post(my_ep, msg->from, std::move(reply));
    }
  }
}

des::Task<TxnHarness::GatherOutcome> TxnHarness::fan_gather(
    ev::EndpointId from, const std::vector<std::size_t>& members,
    ev::MessageId type, std::uint64_t token) {
  GatherOutcome out;
  if (members.empty()) {
    out.complete = true;
    co_return out;
  }
  auto& sim = bus_->sim();
  std::vector<char> answered(members.size(), 0);
  std::size_t pending = members.size();

  for (int attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    // (Re)send the round message to everyone still unanswered. The token is
    // the round's token on every attempt, so the member-side dedupe caches
    // recognize a retry and the gather below can never credit a reply from
    // a different attempt of a different round.
    for (std::size_t j = 0; j < members.size(); ++j) {
      if (answered[j]) continue;
      ev::Message m;
      m.type_id = type;
      m.token = token;
      co_await bus_->post(from, members_[members[j]].ep, std::move(m));
    }
    // Arm this attempt's deadline. The Timer handle is cancelled the moment
    // the gather completes, so a finished round can never receive a stale
    // timeout — the bug that used to make round N+1 end early.
    des::Timer timer = sim.timer_in(cfg_.gather_timeout, [this, from, token] {
      ev::Endpoint* ep = bus_->find(from);
      if (ep != nullptr) {
        ev::Message t;
        t.type_id = kMidTimeout;
        t.token = token;
        ep->mailbox().try_put(std::move(t));
      }
    });
    bool timed_out = false;
    while (pending > 0) {
      ev::Endpoint* self = bus_->find(from);
      if (self == nullptr) {
        timer.cancel();
        co_return out;  // sub-coordinator endpoint crashed
      }
      auto msg = co_await self->mailbox().get();
      if (!msg.has_value()) {
        timer.cancel();
        co_return out;
      }
      if (msg->token != token) continue;   // stale round traffic
      if (msg->type_id == kMidTimeout) {
        timed_out = true;
        break;
      }
      if (!d2t_reply_matches(type, msg->type_id)) continue;
      // Deduplicate per member: a duplicated delivery or a reply to both
      // the original and a retry counts once.
      bool fresh = false;
      for (std::size_t j = 0; j < members.size(); ++j) {
        if (members_[members[j]].ep == msg->from) {
          if (!answered[j]) {
            answered[j] = 1;
            --pending;
            fresh = true;
          }
          break;
        }
      }
      if (fresh) out.replies.push_back(std::move(*msg));
    }
    timer.cancel();
    if (pending == 0) {
      out.complete = true;
      co_return out;
    }
    if (attempt == cfg_.max_retries) break;
    ++out.retries;
    des::SimTime backoff = cfg_.retry_backoff << attempt;
    if (backoff > cfg_.retry_backoff_cap) backoff = cfg_.retry_backoff_cap;
    (void)timed_out;  // pending > 0 here implies the deadline fired
    if (trace::active(cfg_.trace)) {
      cfg_.trace->span("retry", "txn", ev::type_name(type), token, sim.now(),
                       sim.now());
    }
    co_await des::delay(sim, backoff);
  }
  co_return out;
}

namespace {

/// Runs one side's fan-out/gather concurrently with the other side's.
des::Process side_round(des::Task<TxnHarness::GatherOutcome> task,
                        TxnHarness::GatherOutcome* out) {
  *out = co_await std::move(task);
}

}  // namespace

des::Task<TxnResult> TxnHarness::run() {
  auto& sim = bus_->sim();
  auto& net = bus_->network();
  const des::SimTime start = sim.now();
  const std::uint64_t msg_base =
      bus_->stats(ev::TrafficClass::kControl).messages;
  // Each round draws its own token from a per-transaction block, so a late
  // reply (or a stale timeout) from one round can never satisfy the next.
  const std::uint64_t token_base = d2t_token(++txn_counter_, 0);

  TxnResult result;
  ev::Endpoint* coord_ep = bus_->find(coord_);
  ev::Endpoint* wsub_ep = bus_->find(writer_side_.ep);
  ev::Endpoint* rsub_ep = bus_->find(reader_side_.ep);
  if (coord_ep == nullptr || wsub_ep == nullptr || rsub_ep == nullptr) {
    // Coordinator overlay itself is gone; nothing was prepared, so an
    // abort-with-escalation is both safe and honest.
    result.escalated = true;
    result.duration = sim.now() - start;
    co_return result;
  }
  const net::NodeId coord_node = coord_ep->node();
  const net::NodeId wsub_node = wsub_ep->node();
  const net::NodeId rsub_node = rsub_ep->node();

  auto round = [&](ev::MessageId type, std::uint64_t token)
      -> des::Task<std::pair<GatherOutcome, GatherOutcome>> {
    // Coordinator -> sub-coordinator hops (point-to-point, cheap).
    co_await net.transfer(coord_node, wsub_node, 256);
    co_await net.transfer(coord_node, rsub_node, 256);
    GatherOutcome wr, rr;
    auto pw = spawn(sim, side_round(fan_gather(writer_side_.ep,
                                               writer_side_.members, type,
                                               token),
                                    &wr));
    auto pr = spawn(sim, side_round(fan_gather(reader_side_.ep,
                                               reader_side_.members, type,
                                               token),
                                    &rr));
    co_await pw;
    co_await pr;
    // Sub-coordinator -> coordinator reports.
    co_await net.transfer(wsub_node, coord_node, 256);
    co_await net.transfer(rsub_node, coord_node, 256);
    co_return std::make_pair(std::move(wr), std::move(rr));
  };
  auto escalate = [&](const char* phase) {
    result.escalated = true;
    if (trace::active(cfg_.trace)) {
      cfg_.trace->span("escalate", "txn", phase, token_base, sim.now(),
                       sim.now());
    }
    IOC_WARN << "txn " << txn_counter_ << ": " << phase
             << " round exhausted retries; aborting";
  };

  // Round 1: begin.
  auto [bw, br] = co_await round(kMidBegin, token_base + 0);
  ++result.rounds;
  result.retries += bw.retries + br.retries;
  const bool all_present = bw.complete && br.complete;
  if (!all_present) escalate("begin");

  // Round 2: vote (skipped when begin already failed).
  bool all_yes = all_present;
  if (all_present) {
    auto [vw, vr] = co_await round(kMidVote, token_base + 1);
    ++result.rounds;
    result.retries += vw.retries + vr.retries;
    if (!vw.complete || !vr.complete) escalate("vote");
    auto count_yes = [](const GatherOutcome& g) {
      std::size_t n = 0;
      for (const auto& m : g.replies) {
        if (m.type_id == kMidVoteYes) ++n;
      }
      return n;
    };
    // An unanswered member is a missing YES: the transaction aborts, which
    // is the safe direction for 2PC.
    all_yes = vw.complete && vr.complete &&
              count_yes(vw) == writer_side_.members.size() &&
              count_yes(vr) == reader_side_.members.size();
  }

  // Round 3: decide + finalize. Members that miss the decision here are
  // covered by sub-coordinator recovery below.
  const bool commit = all_present && all_yes;
  auto [dw, dr] = co_await round(commit ? kMidCommit : kMidAbort,
                                 token_base + 2);
  ++result.rounds;
  result.retries += dw.retries + dr.retries;

  // Sub-coordinator recovery: apply the logged decision on behalf of every
  // member that did not apply it itself — injected deaths, members whose
  // endpoint a crash destroyed, and members whose decision delivery was
  // lost past the retries. Recording decided_token makes any late delivery
  // of the real decision a recognized duplicate (re-ack, no second apply).
  for (auto& m : members_) {
    if (!m.finished) {
      if (m.op != nullptr) {
        if (commit) {
          m.op->commit();
        } else if (m.prepared) {
          m.op->abort();
        }
      }
      m.prepared = false;
      m.finished = true;
      // Monotone by construction (token_base grows every transaction); the
      // guard keeps the forward-only discipline — a decided_token that
      // regressed would re-open an older transaction's at-most-once window.
      m.guard.record_decision(token_base + 2);
    }
  }

  result.outcome = commit ? Outcome::kCommitted : Outcome::kAborted;
  result.duration = sim.now() - start;
  // Control-plane cost: every bus message this transaction caused (fan-outs,
  // replies, retries) plus the four coordinator<->sub-coordinator hops each
  // executed round pays above — derived, not hardcoded.
  result.messages = bus_->stats(ev::TrafficClass::kControl).messages -
                    msg_base +
                    4ull * static_cast<std::uint64_t>(result.rounds);
  // Reset per-transaction member state for reuse.
  for (auto& m : members_) m.finished = false;
  co_return result;
}

}  // namespace ioc::txn
