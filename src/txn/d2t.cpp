#include "txn/d2t.h"

#include "util/log.h"

namespace ioc::txn {

namespace {

constexpr const char* kBeginMsg = "TXN_BEGIN";
constexpr const char* kVoteMsg = "TXN_VOTE";
constexpr const char* kCommitMsg = "TXN_COMMIT";
constexpr const char* kAbortMsg = "TXN_ABORT";
constexpr const char* kTimeoutMsg = "__txn_timeout__";

bool is_decision(const std::string& type) {
  return type == kCommitMsg || type == kAbortMsg;
}

}  // namespace

TxnHarness::TxnHarness(ev::Bus& bus, TxnConfig cfg) : bus_(&bus), cfg_(cfg) {
  auto& cluster = bus.network().cluster();
  const net::NodeId sub_reader_node =
      cluster.size() > 1 ? net::NodeId{1} : net::NodeId{0};
  coord_ = bus.open(0, "txn.coord").id();
  writer_side_.ep = bus.open(0, "txn.sub.writers").id();
  reader_side_.ep = bus.open(sub_reader_node, "txn.sub.readers").id();

  const std::size_t total = cfg.writers + cfg.readers;
  members_.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    const net::NodeId node =
        static_cast<net::NodeId>((i + 2) % cluster.size());
    members_[i].ep = bus.open(node, "txn.member").id();
    if (cfg.failure.participant == static_cast<int>(i)) {
      members_[i].dies_at = cfg.failure.at;
    }
    if (i < cfg.writers) {
      writer_side_.members.push_back(i);
    } else {
      reader_side_.members.push_back(i);
    }
    procs_.push_back(spawn(bus.sim(), member_loop(i)));
  }
}

TxnHarness::~TxnHarness() {
  for (auto& m : members_) bus_->close(m.ep);
  bus_->close(writer_side_.ep);
  bus_->close(reader_side_.ep);
  bus_->close(coord_);
  // The member loops block on their mailboxes; drain the simulator so they
  // observe the closes and finish instead of leaking their frames (see
  // des/process.h lifetime rules).
  auto& sim = bus_->sim();
  while (sim.step()) {
  }
}

void TxnHarness::set_operation(std::size_t index, Operation* op) {
  members_.at(index).op = op;
}

des::Process TxnHarness::member_loop(std::size_t index) {
  ev::Endpoint* self = bus_->find(members_[index].ep);
  while (self != nullptr) {
    auto msg = co_await self->mailbox().get();
    if (!msg.has_value()) break;
    Member& me = members_[index];

    if (msg->type == kBeginMsg) {
      if (me.dies_at <= Phase::kBegin) me.dead = true;
      if (me.dead) continue;
      ev::Message reply;
      reply.type = "TXN_BEGUN";
      reply.token = msg->token;
      co_await bus_->post(me.ep, msg->from, std::move(reply));
    } else if (msg->type == kVoteMsg) {
      if (me.dies_at <= Phase::kVote) me.dead = true;
      if (me.dead) continue;
      bool yes = true;
      if (me.op != nullptr) {
        yes = me.op->prepare();
        me.prepared = yes;
      }
      ev::Message reply;
      reply.type = yes ? "TXN_VOTE_YES" : "TXN_VOTE_NO";
      reply.token = msg->token;
      co_await bus_->post(me.ep, msg->from, std::move(reply));
    } else if (is_decision(msg->type)) {
      if (me.dies_at <= Phase::kDecide) me.dead = true;
      if (me.dead) continue;
      if (me.op != nullptr) {
        if (msg->type == kCommitMsg) {
          me.op->commit();
        } else if (me.prepared) {
          me.op->abort();
        }
      }
      me.prepared = false;
      me.finished = true;
      ev::Message reply;
      reply.type = "TXN_FINAL";
      reply.token = msg->token;
      co_await bus_->post(me.ep, msg->from, std::move(reply));
    }
  }
}

des::Task<std::vector<ev::Message>> TxnHarness::fan_gather(
    ev::EndpointId from, const std::vector<std::size_t>& members,
    const std::string& type, std::uint64_t token) {
  std::vector<ev::Message> replies;
  if (members.empty()) co_return replies;
  for (std::size_t idx : members) {
    ev::Message m;
    m.type = type;
    m.token = token;
    co_await bus_->post(from, members_[idx].ep, std::move(m));
  }
  ev::Endpoint* self = bus_->find(from);
  if (self == nullptr) co_return replies;
  auto& sim = bus_->sim();
  sim.call_at(sim.now() + cfg_.gather_timeout, [this, from, token] {
    ev::Endpoint* ep = bus_->find(from);
    if (ep != nullptr) {
      ev::Message t;
      t.type = kTimeoutMsg;
      t.token = token;
      ep->mailbox().try_put(std::move(t));
    }
  });
  while (replies.size() < members.size()) {
    auto msg = co_await self->mailbox().get();
    if (!msg.has_value()) break;
    if (msg->token != token) continue;  // stale round traffic
    if (msg->type == kTimeoutMsg) break;
    replies.push_back(std::move(*msg));
  }
  co_return replies;
}

namespace {

/// Runs one side's fan-out/gather concurrently with the other side's.
des::Process side_round(des::Task<std::vector<ev::Message>> task,
                        std::vector<ev::Message>* out) {
  *out = co_await std::move(task);
}

}  // namespace

des::Task<TxnResult> TxnHarness::run() {
  auto& sim = bus_->sim();
  auto& net = bus_->network();
  const des::SimTime start = sim.now();
  const std::uint64_t msg_base =
      bus_->stats(ev::TrafficClass::kControl).messages;
  const std::uint64_t token = 1000 + ++txn_counter_;

  ev::Endpoint* coord_ep = bus_->find(coord_);
  const net::NodeId coord_node = coord_ep->node();
  const net::NodeId wsub_node = bus_->find(writer_side_.ep)->node();
  const net::NodeId rsub_node = bus_->find(reader_side_.ep)->node();

  auto round = [&](const std::string& type)
      -> des::Task<std::pair<std::vector<ev::Message>,
                             std::vector<ev::Message>>> {
    // Coordinator -> sub-coordinator hops (point-to-point, cheap).
    co_await net.transfer(coord_node, wsub_node, 256);
    co_await net.transfer(coord_node, rsub_node, 256);
    std::vector<ev::Message> wr, rr;
    auto pw = spawn(sim, side_round(fan_gather(writer_side_.ep,
                                               writer_side_.members, type,
                                               token),
                                    &wr));
    auto pr = spawn(sim, side_round(fan_gather(reader_side_.ep,
                                               reader_side_.members, type,
                                               token),
                                    &rr));
    co_await pw;
    co_await pr;
    // Sub-coordinator -> coordinator reports.
    co_await net.transfer(wsub_node, coord_node, 256);
    co_await net.transfer(rsub_node, coord_node, 256);
    co_return std::make_pair(std::move(wr), std::move(rr));
  };

  TxnResult result;
  result.rounds = 3;

  // Round 1: begin.
  auto [bw, br] = co_await round(kBeginMsg);
  bool all_present = bw.size() == writer_side_.members.size() &&
                     br.size() == reader_side_.members.size();

  // Round 2: vote (skipped when begin already failed).
  bool all_yes = all_present;
  if (all_present) {
    auto [vw, vr] = co_await round(kVoteMsg);
    auto count_yes = [](const std::vector<ev::Message>& v) {
      std::size_t n = 0;
      for (const auto& m : v) {
        if (m.type == "TXN_VOTE_YES") ++n;
      }
      return n;
    };
    all_yes = count_yes(vw) == writer_side_.members.size() &&
              count_yes(vr) == reader_side_.members.size();
  } else {
    result.rounds = 2;
  }

  // Round 3: decide + finalize.
  const bool commit = all_present && all_yes;
  co_await round(commit ? kCommitMsg : kAbortMsg);

  // Sub-coordinator recovery: apply the logged decision for members that
  // died after the decision was made.
  for (auto& m : members_) {
    if (m.dead && !m.finished) {
      if (m.op != nullptr) {
        if (commit) {
          m.op->commit();
        } else if (m.prepared) {
          m.op->abort();
        }
      }
      m.prepared = false;
      m.finished = true;
    }
  }

  result.outcome = commit ? Outcome::kCommitted : Outcome::kAborted;
  result.duration = sim.now() - start;
  result.messages =
      bus_->stats(ev::TrafficClass::kControl).messages - msg_base + 6;
  // Reset per-transaction member state for reuse.
  for (auto& m : members_) m.finished = false;
  co_return result;
}

}  // namespace ioc::txn
