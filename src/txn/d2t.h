// D2T-style control transactions ("doubly distributed transactions"): the
// participants form two groups — writers (client side) and readers (server
// side) — each with a sub-coordinator; a top-level coordinator drives
// begin / vote / decide / finalize rounds across both groups. The container
// runtime wraps resource trades in these so that, under arbitrary
// participant failures, a node removed from one container is either
// successfully added to the other or restored — never lost or duplicated.
//
// Failure model: an injected failure makes a participant stop responding at
// a chosen phase. Failures before the decision force an abort (prepared
// operations roll back). Failures after the decision are recovered by the
// participant's sub-coordinator, which applies the logged decision on its
// behalf — the standard coordinator-side recovery that keeps 2PC atomic.
//
// Message-loss model: every gather round carries its own token (so a stale
// timeout or a late reply from round N can never be miscounted in round
// N+1), filters replies on the exact type the round expects, deduplicates
// per participant, and retries unanswered participants with capped
// exponential backoff. A round that stays incomplete after the retries are
// exhausted escalates: the transaction aborts cleanly (prepared operations
// roll back, sub-coordinator recovery still applies a logged decision).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "des/process.h"
#include "des/time.h"
#include "ev/bus.h"
#include "trace/sink.h"
#include "txn/d2t_model.h"

namespace ioc::txn {

enum class Phase : int { kBegin = 0, kVote = 1, kDecide = 2, kNever = 99 };
enum class Outcome { kCommitted, kAborted };

/// One participant's local piece of a transaction.
class Operation {
 public:
  virtual ~Operation() = default;
  /// Reserve/validate; returning false vetoes the transaction.
  virtual bool prepare() = 0;
  virtual void commit() = 0;
  virtual void abort() = 0;
};

struct FailureSpec {
  int participant = -1;          ///< global index (writers first); -1 = none
  Phase at = Phase::kNever;      ///< stops responding from this phase on
};

struct TxnConfig {
  std::size_t writers = 4;
  std::size_t readers = 2;
  des::SimTime gather_timeout = 2 * des::kSecond;
  /// Resend attempts per gather round after the first send; each retry adds
  /// a backoff of retry_backoff * 2^attempt, capped at retry_backoff_cap.
  int max_retries = 3;
  des::SimTime retry_backoff = 250 * des::kMillisecond;
  des::SimTime retry_backoff_cap = 2 * des::kSecond;
  FailureSpec failure;
  /// When set, every retry and escalation emits a span here.
  trace::TraceSink* trace = nullptr;
};

struct TxnResult {
  Outcome outcome = Outcome::kAborted;
  des::SimTime duration = 0;
  std::uint64_t messages = 0;  ///< control messages this transaction used
  int rounds = 0;
  int retries = 0;      ///< gather resend rounds across all phases
  bool escalated = false;  ///< a round exhausted its retries (forced abort)
};

/// Builds the participant/sub-coordinator overlay on a cluster and executes
/// transactions against it. Each participant may carry an Operation (null =
/// it just votes yes).
class TxnHarness {
 public:
  /// Participants are placed round-robin over the cluster's nodes; the
  /// coordinator and sub-coordinators get their own endpoints on node 0.
  TxnHarness(ev::Bus& bus, TxnConfig cfg);
  ~TxnHarness();
  TxnHarness(const TxnHarness&) = delete;
  TxnHarness& operator=(const TxnHarness&) = delete;

  std::size_t participant_count() const { return members_.size(); }

  /// Assign the local operation of participant `index` (writers first, then
  /// readers). Ownership stays with the caller.
  void set_operation(std::size_t index, Operation* op);

  /// Execute one transaction across all participants.
  des::Task<TxnResult> run();

  struct GatherOutcome {
    std::vector<ev::Message> replies;  ///< one per participant, deduplicated
    int retries = 0;
    bool complete = false;  ///< every participant answered
  };

 private:
  struct Member {
    ev::EndpointId ep = ev::kInvalidEndpoint;
    Operation* op = nullptr;
    Phase dies_at = Phase::kNever;
    bool dead = false;
    bool prepared = false;
    bool finished = false;  ///< applied commit/abort itself
    /// At-most-once guards (shared with every other D2T participant role,
    /// see d2t_model.h): a retried or duplicated round message must not
    /// re-run prepare/commit/abort; the member just re-sends its reply.
    D2tMemberGuard guard;
  };
  struct SubCoord {
    ev::EndpointId ep = ev::kInvalidEndpoint;
    std::vector<std::size_t> members;  ///< indices into members_
  };

  des::Process member_loop(std::size_t index);
  /// Fan `type` out to a group and gather one reply of an expected type per
  /// member, retrying non-responders with backoff. The per-round `token`
  /// isolates this gather from every other round's traffic; the timeout
  /// timer is cancelled the moment the gather completes.
  des::Task<GatherOutcome> fan_gather(ev::EndpointId from,
                                      const std::vector<std::size_t>& members,
                                      ev::MessageId type,
                                      std::uint64_t token);
  /// True iff `reply` is a legal reply type for a `sent` round message.
  static bool reply_matches(const std::string& sent, const std::string& reply);

  ev::Bus* bus_;
  TxnConfig cfg_;
  ev::EndpointId coord_ = ev::kInvalidEndpoint;
  SubCoord writer_side_;
  SubCoord reader_side_;
  std::vector<Member> members_;
  std::vector<des::Process> procs_;
  std::uint64_t txn_counter_ = 0;
};

}  // namespace ioc::txn
