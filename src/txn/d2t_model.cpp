#include "txn/d2t_model.h"

#include <cstring>

namespace ioc::txn {

const D2tRound* d2t_rounds(std::size_t* count) {
  // Execution order of TxnHarness::run(): begin (phase 0), vote (phase 1),
  // decide (phase 2; commit and abort are the two request spellings of the
  // same round and share its token).
  static const D2tRound kRounds[] = {
      {kBeginMsg, kBegunReply, nullptr, 0},
      {kVoteMsg, kVoteYesReply, kVoteNoReply, 1},
      {kCommitMsg, kFinalReply, nullptr, 2},
      {kAbortMsg, kFinalReply, nullptr, 2},
  };
  if (count != nullptr) *count = sizeof(kRounds) / sizeof(kRounds[0]);
  return kRounds;
}

const D2tRound* d2t_round_for(const std::string& sent) {
  std::size_t n = 0;
  const D2tRound* rounds = d2t_rounds(&n);
  for (std::size_t i = 0; i < n; ++i) {
    if (sent == rounds[i].request) return &rounds[i];
  }
  return nullptr;
}

bool d2t_reply_matches(const std::string& sent, const std::string& reply) {
  const D2tRound* r = d2t_round_for(sent);
  if (r == nullptr) return false;
  return reply == r->reply_a ||
         (r->reply_b != nullptr && reply == r->reply_b);
}

bool d2t_is_decision(const std::string& type) {
  return type == kCommitMsg || type == kAbortMsg;
}

}  // namespace ioc::txn
