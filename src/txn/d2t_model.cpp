#include "txn/d2t_model.h"

#include <algorithm>
#include <cstring>

namespace ioc::txn {

const D2tRound* d2t_rounds(std::size_t* count) {
  // Execution order of TxnHarness::run(): begin (phase 0), vote (phase 1),
  // decide (phase 2; commit and abort are the two request spellings of the
  // same round and share its token).
  static const D2tRound kRounds[] = {
      {kBeginMsg, kBegunReply, nullptr, 0},
      {kVoteMsg, kVoteYesReply, kVoteNoReply, 1},
      {kCommitMsg, kFinalReply, nullptr, 2},
      {kAbortMsg, kFinalReply, nullptr, 2},
  };
  if (count != nullptr) *count = sizeof(kRounds) / sizeof(kRounds[0]);
  return kRounds;
}

const D2tRound* d2t_round_for(const std::string& sent) {
  std::size_t n = 0;
  const D2tRound* rounds = d2t_rounds(&n);
  for (std::size_t i = 0; i < n; ++i) {
    if (sent == rounds[i].request) return &rounds[i];
  }
  return nullptr;
}

bool d2t_reply_matches(const std::string& sent, const std::string& reply) {
  const D2tRound* r = d2t_round_for(sent);
  if (r == nullptr) return false;
  return reply == r->reply_a ||
         (r->reply_b != nullptr && reply == r->reply_b);
}

bool d2t_reply_matches(ev::MessageId sent, ev::MessageId reply) {
  std::size_t n = 0;
  const D2tRound* rounds = d2t_rounds(&n);
  for (std::size_t i = 0; i < n; ++i) {
    if (sent != rounds[i].request_id()) continue;
    if (reply == ev::intern_type(rounds[i].reply_a)) return true;
    return rounds[i].reply_b != nullptr &&
           reply == ev::intern_type(rounds[i].reply_b);
  }
  return false;
}

bool d2t_is_decision(const std::string& type) {
  return type == kCommitMsg || type == kAbortMsg;
}

D2tMemberGuard::VoteAction D2tMemberGuard::classify_vote(
    std::uint64_t token) const {
  if (d2t_txn_of(decided_token) >= d2t_txn_of(token)) {
    // A delayed vote request for a transaction that already decided:
    // preparing now would reserve state nobody will ever commit or roll
    // back. Vote no without preparing.
    return VoteAction::kStaleNo;
  }
  if (voted_token == token) return VoteAction::kReplay;
  return VoteAction::kFresh;
}

void D2tMemberGuard::record_vote(std::uint64_t token, bool yes) {
  voted_token = token;
  voted_yes = yes;
}

D2tMemberGuard::DecideAction D2tMemberGuard::classify_decision(
    std::uint64_t token) const {
  if (d2t_txn_of(voted_token) != d2t_txn_of(token)) {
    // Decision for a transaction this member never voted in — a delayed
    // duplicate from an earlier trade, or the member missed the vote round
    // entirely. Applying it would commit/abort the WRONG trade's
    // reservation; ack without touching state (the coordinator's recovery
    // pass applies the logged decision where needed).
    return DecideAction::kAckOnly;
  }
  if (decided_token == token) return DecideAction::kAckOnly;  // duplicate
  return DecideAction::kApply;
}

void D2tMemberGuard::record_decision(std::uint64_t token) {
  // decided_token can only move forward — the vote classifier already
  // rejects anything from an older transaction.
  decided_token = std::max(decided_token, token);
}

}  // namespace ioc::txn
