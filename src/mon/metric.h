// Monitoring data model: samples captured at container boundaries and
// shipped over the EVPath-like overlay to whoever manages them.
#pragma once

#include <cstdint>
#include <string>

#include "des/time.h"

namespace ioc::mon {

enum class MetricKind : std::uint8_t {
  kLatency,      ///< seconds from input-queue entry to component exit
  kQueueDepth,   ///< undelivered steps waiting in the input stream
  kThroughput,   ///< steps/second completed
  kEndToEnd,     ///< seconds from simulation emission to pipeline exit
};

const char* metric_kind_name(MetricKind k);

struct MetricSample {
  std::string source;      ///< container name (or "pipeline" for e2e)
  MetricKind kind = MetricKind::kLatency;
  std::uint64_t step = 0;
  double value = 0;
  des::SimTime at = 0;
};

}  // namespace ioc::mon
