// The global manager's aggregate view of the pipeline: ingests metric
// samples (routed through an EVPath-style stone graph), keeps windowed
// per-container statistics plus a counter/histogram registry, and answers
// the bottleneck question — the container with the longest average
// latency, exactly as Section III-E defines it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ev/stone.h"
#include "mon/metric.h"
#include "trace/metrics.h"
#include "util/stats.h"

namespace ioc::mon {

class MonitoringHub {
 public:
  /// `window`: number of recent latency samples averaged per container.
  explicit MonitoringHub(std::size_t window = 8, bool keep_history = true);

  /// Feed one sample (typically from the GM's monitoring endpoint process).
  void ingest(const MetricSample& s);

  /// Windowed average latency for a container; nullopt if never seen.
  std::optional<double> avg_latency(const std::string& container) const;
  /// Samples currently inside the container's latency window (0 after a
  /// reset_container or for an unknown container).
  std::size_t latency_window_count(const std::string& container) const;
  /// Most recent value of a metric kind; nullopt if the container never
  /// reported that kind.
  std::optional<double> last_value(const std::string& container,
                                   MetricKind k) const;
  std::uint64_t samples_seen() const { return samples_seen_; }

  /// The container with the highest windowed average latency, restricted to
  /// `candidates` (empty = all known).
  std::optional<std::string> bottleneck(
      const std::vector<std::string>& candidates = {}) const;

  /// Clear a container's window (after a management action changed it).
  void reset_container(const std::string& container);

  /// Full sample history (benches plot it); empty if keep_history is false.
  const std::vector<MetricSample>& history() const { return history_; }
  std::vector<MetricSample> history_for(const std::string& source,
                                        MetricKind k) const;

  /// Whole-run counters and histograms (never reset by management actions,
  /// unlike the windows): ioc_samples_total{kind=...},
  /// ioc_container_latency_seconds{container=...},
  /// ioc_end_to_end_seconds, ioc_queue_depth{container=...}.
  const trace::MetricsRegistry& metrics() const { return metrics_; }
  /// Mutable registry, so co-located subsystems (fault::Injector::publish,
  /// fed::Fleet::publish_metrics) can export into the same scrape.
  trace::MetricsRegistry& metrics() { return metrics_; }
  /// Prometheus text-format snapshot of those aggregates.
  std::string prometheus() const { return metrics_.to_prometheus(); }

 private:
  struct PerContainer {
    util::WindowedMean latency;
    std::map<MetricKind, double> last;
    explicit PerContainer(std::size_t window) : latency(window) {}
  };

  void update_metrics(const MetricSample& s);

  std::size_t window_;
  bool keep_history_;
  std::map<std::string, PerContainer> containers_;
  std::vector<MetricSample> history_;
  std::uint64_t samples_seen_ = 0;
  trace::MetricsRegistry metrics_;

  // Stones: a filter keeps latency samples flowing into the windows, a
  // split keeps the raw history; structured this way so custom overlays can
  // be grafted on without touching the hub.
  ev::StoneGraph<MetricSample> stones_;
  ev::StoneId entry_ = 0;
};

}  // namespace ioc::mon
