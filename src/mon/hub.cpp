#include "mon/hub.h"

namespace ioc::mon {

const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kLatency: return "latency";
    case MetricKind::kQueueDepth: return "queue-depth";
    case MetricKind::kThroughput: return "throughput";
    case MetricKind::kEndToEnd: return "end-to-end";
  }
  return "?";
}

MonitoringHub::MonitoringHub(std::size_t window, bool keep_history)
    : window_(window), keep_history_(keep_history) {
  entry_ = stones_.add_split();
  auto record = stones_.add_terminal([this](const MetricSample& s) {
    auto [it, inserted] = containers_.try_emplace(s.source, window_);
    it->second.last[s.kind] = s.value;
    if (s.kind == MetricKind::kLatency) it->second.latency.add(s.value);
    update_metrics(s);
  });
  auto keep = stones_.add_terminal([this](const MetricSample& s) {
    if (keep_history_) history_.push_back(s);
  });
  stones_.link(entry_, record);
  stones_.link(entry_, keep);
}

void MonitoringHub::ingest(const MetricSample& s) {
  ++samples_seen_;
  stones_.submit(entry_, s);
}

std::optional<double> MonitoringHub::avg_latency(
    const std::string& container) const {
  auto it = containers_.find(container);
  if (it == containers_.end() || it->second.latency.count() == 0) {
    return std::nullopt;
  }
  return it->second.latency.mean();
}

std::size_t MonitoringHub::latency_window_count(
    const std::string& container) const {
  auto it = containers_.find(container);
  return it == containers_.end() ? 0 : it->second.latency.count();
}

std::optional<double> MonitoringHub::last_value(const std::string& container,
                                                MetricKind k) const {
  auto it = containers_.find(container);
  if (it == containers_.end()) return std::nullopt;
  auto lit = it->second.last.find(k);
  if (lit == it->second.last.end()) return std::nullopt;
  return lit->second;
}

void MonitoringHub::update_metrics(const MetricSample& s) {
  metrics_
      .counter("ioc_samples_total",
               std::string("kind=\"") + metric_kind_name(s.kind) + "\"",
               "Monitoring samples ingested by the hub.")
      .inc();
  switch (s.kind) {
    case MetricKind::kLatency:
      metrics_
          .histogram("ioc_container_latency_seconds",
                     "container=\"" + s.source + "\"",
                     "Per-timestep entry-to-exit latency per container.")
          .observe(s.value);
      break;
    case MetricKind::kEndToEnd:
      metrics_
          .histogram("ioc_end_to_end_seconds", "",
                     "Simulation-emission to pipeline-exit latency.")
          .observe(s.value);
      break;
    case MetricKind::kQueueDepth:
      metrics_
          .gauge("ioc_queue_depth", "container=\"" + s.source + "\"",
                 "Undelivered steps waiting in the container's input.")
          .set(s.value);
      break;
    case MetricKind::kThroughput:
      metrics_
          .gauge("ioc_throughput_steps_per_second",
                 "container=\"" + s.source + "\"",
                 "Steps per second completed by the container.")
          .set(s.value);
      break;
  }
}

std::optional<std::string> MonitoringHub::bottleneck(
    const std::vector<std::string>& candidates) const {
  std::optional<std::string> best;
  double best_latency = -1;
  auto consider = [&](const std::string& name) {
    auto avg = avg_latency(name);
    if (avg.has_value() && *avg > best_latency) {
      best_latency = *avg;
      best = name;
    }
  };
  if (candidates.empty()) {
    for (const auto& [name, _] : containers_) consider(name);
  } else {
    for (const auto& name : candidates) consider(name);
  }
  return best;
}

void MonitoringHub::reset_container(const std::string& container) {
  auto it = containers_.find(container);
  if (it != containers_.end()) it->second.latency.reset();
}

std::vector<MetricSample> MonitoringHub::history_for(const std::string& source,
                                                     MetricKind k) const {
  std::vector<MetricSample> out;
  for (const auto& s : history_) {
    if (s.source == source && s.kind == k) out.push_back(s);
  }
  return out;
}

}  // namespace ioc::mon
