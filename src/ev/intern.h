// Message-type interning: every distinct type string ("INCREASE_REQ",
// "TXN_VOTE", "ERROR/timeout", ...) maps to a dense 16-bit MessageId, and
// Message carries the id instead of an owning std::string. Dispatch sites
// compare two u16s; anything that needs the text (logs, lint replay,
// ioc_verify counterexamples) goes through type_name(), which returns the
// exact bytes that were interned — replay output is byte-identical to the
// pre-interning representation.
//
// Determinism: the table is append-only, and the canonical control-plane
// vocabulary is preregistered in a fixed order before any dynamic intern, so
// a given type string gets the same id in every binary regardless of TU
// initialization order. See DESIGN.md §16 for the invariants.
#pragma once

#include <cstdint>
#include <string_view>

namespace ioc::ev {

/// Dense id of an interned message-type string. 0 <=> "" (an unset type).
using MessageId = std::uint16_t;

inline constexpr MessageId kNoMessageId = 0;

/// Intern `s`, returning its MessageId. Allocates only for strings never
/// seen before; the canonical vocabulary is preregistered so steady-state
/// calls are pure hash probes.
MessageId intern_type(std::string_view s);

/// The string behind `id` — stable for the process lifetime, "" for
/// unknown ids.
std::string_view type_name(MessageId id);

/// Number of distinct type strings interned so far ("" counts).
std::size_t type_count();

}  // namespace ioc::ev
