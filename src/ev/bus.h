// EVPath-substitute: named endpoints with mailboxes, message delivery over
// the modeled network, and a request/reply helper for the rounds of control
// messages the management protocols exchange (paper Fig. 3).
//
// The bus also keeps a ledger of message counts and bytes split by traffic
// class, because the paper's Fig. 4 discussion distinguishes manager<->global
// point-to-point messages (negligible) from intra-container metadata
// exchanges (dominant).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "des/process.h"
#include "des/queue.h"
#include "ev/message.h"
#include "net/network.h"

namespace ioc::ev {

/// Traffic classes for the accounting ledger.
enum class TrafficClass {
  kControl,    ///< manager-to-manager point-to-point control
  kMetadata,   ///< endpoint/contact metadata exchanges inside a container
  kMonitoring, ///< monitoring overlay samples
  kData,       ///< bulk data notifications (DataTap metadata pushes)
};
const char* traffic_class_name(TrafficClass c);

struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

// Synthetic reply types Bus::request resolves to when no real reply can
// arrive. Callers distinguish them by interned id (kMidErr*); the strings
// remain the canonical spelling for logs and replay.
inline constexpr const char* kErrUnreachable = "ERROR/unreachable";
inline constexpr const char* kErrClosed = "ERROR/closed";
inline constexpr const char* kErrTimeout = "ERROR/timeout";
inline const MessageId kMidErrUnreachable = intern_type(kErrUnreachable);
inline const MessageId kMidErrClosed = intern_type(kErrClosed);
inline const MessageId kMidErrTimeout = intern_type(kErrTimeout);

/// Interception point for deterministic fault injection (src/fault). The
/// bus consults the installed hook once per delivery, after the transfer
/// cost has been paid — a dropped message still looks like a successful
/// send at the source, exactly as on a lossy fabric. The hook must be
/// deterministic given the event order (seeded RNG, no wall-clock).
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  struct Decision {
    bool drop = false;           ///< deliver nothing
    bool duplicate = false;      ///< deliver a second copy
    des::SimTime extra_delay = 0;  ///< added before delivery
  };
  virtual Decision on_post(net::NodeId src, net::NodeId dst,
                           const Message& m, TrafficClass cls) = 0;
};

class Endpoint {
 public:
  Endpoint(des::Simulator& sim, EndpointId id, net::NodeId node,
           std::string name)
      : id_(id), node_(node), name_(std::move(name)), mailbox_(sim) {}

  EndpointId id() const { return id_; }
  net::NodeId node() const { return node_; }
  const std::string& name() const { return name_; }
  des::Queue<Message>& mailbox() { return mailbox_; }

 private:
  EndpointId id_;
  net::NodeId node_;
  std::string name_;
  des::Queue<Message> mailbox_;
};

class Bus {
 public:
  explicit Bus(net::Network& network);

  des::Simulator& sim() const { return network_->cluster().sim(); }
  net::Network& network() const { return *network_; }

  /// Create an endpoint on a node. Names are for diagnostics/lookup and need
  /// not be unique (replicas share a base name).
  Endpoint& open(net::NodeId node, std::string name);
  /// Drop an endpoint: closes its mailbox; late sends are counted and
  /// dropped.
  void close(EndpointId id);

  Endpoint* find(EndpointId id) {
    if (id == 0 || id > endpoints_.size()) return nullptr;
    return endpoints_[id - 1].get();
  }
  /// First live endpoint with the given name, or nullptr.
  Endpoint* find_by_name(const std::string& name);
  /// Every live endpoint currently placed on `node`.
  std::vector<EndpointId> endpoints_on(net::NodeId node) const;
  /// Close every endpoint on `node` — the bus-level effect of a node crash.
  /// Loops blocked on those mailboxes observe end-of-stream and finish.
  void close_node(net::NodeId node);

  /// Deliver a message: pays the network cost from the sender endpoint's
  /// node to the receiver's, then enqueues into the receiver's mailbox.
  /// Returns false if the destination vanished meanwhile.
  des::Task<bool> post(EndpointId from, EndpointId to, Message m,
                       TrafficClass cls = TrafficClass::kControl);

  /// Send `m` to `to` and suspend until a reply carrying the same token
  /// arrives in `from`'s mailbox. The caller owns the mailbox: no other
  /// receiver may consume from it concurrently. When `timeout` is positive
  /// and no reply arrives within it, resolves to a kErrTimeout message
  /// instead of blocking forever; the timeout timer is cancelled the moment
  /// a real reply lands, so it can never leak into a later exchange.
  des::Task<Message> request(EndpointId from, EndpointId to, Message m,
                             TrafficClass cls = TrafficClass::kControl,
                             des::SimTime timeout = 0);

  std::uint64_t fresh_token() { return next_token_++; }

  /// Install (or clear, with nullptr) the fault-injection hook. The hook
  /// must outlive its installation window.
  void set_fault_hook(FaultHook* hook) { fault_ = hook; }
  FaultHook* fault_hook() const { return fault_; }

  const TrafficStats& stats(TrafficClass c) const;
  void reset_stats();
  std::uint64_t dropped() const { return dropped_; }
  /// Messages the fault hook silently dropped (not counted in dropped()).
  std::uint64_t injected_drops() const { return injected_drops_; }

 private:
  // Endpoints indexed by id (id N lives at slot N-1); closed endpoints
  // leave a null tombstone so ids stay unique and find() stays O(1).
  // Iteration in slot order matches the id-ordered walk the former
  // std::map did, so name lookup and close_node order are unchanged.
  net::Network* network_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  EndpointId next_id_ = 1;
  std::uint64_t next_token_ = 1;
  TrafficStats stats_[4];
  std::uint64_t dropped_ = 0;
  std::uint64_t injected_drops_ = 0;
  FaultHook* fault_ = nullptr;
};

}  // namespace ioc::ev
