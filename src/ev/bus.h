// EVPath-substitute, DES transport: message delivery over the modeled
// network on the virtual clock. The endpoint table, request/reply ladder,
// and traffic ledger live in the transport-agnostic base (bus_if.h); this
// class supplies only what is specific to simulation — delivery that pays
// the modeled network cost (paper Fig. 4 distinguishes manager<->global
// point-to-point messages, negligible, from intra-container metadata
// exchanges, dominant).
#pragma once

#include "ev/bus_if.h"
#include "net/network.h"

namespace ioc::ev {

class Bus : public BusIf {
 public:
  explicit Bus(net::Network& network);

  des::Simulator& sim() const override { return network_->cluster().sim(); }
  net::Network& network() const override { return *network_; }

  /// Deliver a message: pays the network cost from the sender endpoint's
  /// node to the receiver's, then enqueues into the receiver's mailbox.
  /// Returns false if the destination vanished meanwhile.
  des::Task<bool> post(EndpointId from, EndpointId to, Message m,
                       TrafficClass cls = TrafficClass::kControl) override;

 private:
  net::Network* network_;
};

}  // namespace ioc::ev
