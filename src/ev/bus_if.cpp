#include "ev/bus_if.h"

#include "util/log.h"

namespace ioc::ev {

const char* traffic_class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::kControl: return "control";
    case TrafficClass::kMetadata: return "metadata";
    case TrafficClass::kMonitoring: return "monitoring";
    case TrafficClass::kData: return "data";
  }
  return "?";
}

Endpoint& BusIf::open(net::NodeId node, std::string name) {
  EndpointId id = next_id_++;
  auto ep = std::make_unique<Endpoint>(sim(), id, node, std::move(name));
  Endpoint& ref = *ep;
  endpoints_.push_back(std::move(ep));  // id N lives at slot N-1
  return ref;
}

void BusIf::close(EndpointId id) {
  Endpoint* ep = find(id);
  if (ep == nullptr) return;
  ep->mailbox().close();
  endpoints_[id - 1].reset();  // tombstone: the id is never reused
}

Endpoint* BusIf::find_by_name(const std::string& name) {
  for (auto& ep : endpoints_) {
    if (ep != nullptr && ep->name() == name) return ep.get();
  }
  return nullptr;
}

std::vector<EndpointId> BusIf::endpoints_on(net::NodeId node) const {
  std::vector<EndpointId> out;
  for (const auto& ep : endpoints_) {
    if (ep != nullptr && ep->node() == node) out.push_back(ep->id());
  }
  return out;
}

void BusIf::close_node(net::NodeId node) {
  for (EndpointId id : endpoints_on(node)) close(id);
}

des::Task<Message> BusIf::request(EndpointId from, EndpointId to, Message m,
                                  TrafficClass cls, des::SimTime timeout) {
  if (m.token == 0) m.token = fresh_token();
  const std::uint64_t token = m.token;
  bool sent = co_await post(from, to, std::move(m), cls);
  if (!sent) {
    Message err;
    err.type_id = kMidErrUnreachable;
    err.token = token;
    co_return err;
  }
  des::Timer timer;
  if (timeout > 0) {
    timer = sim().timer_in(timeout, [this, from, token] {
      if (Endpoint* ep = find(from)) {
        Message t;
        t.type_id = kMidErrTimeout;
        t.token = token;
        ep->mailbox().try_put(std::move(t));
      }
    });
  }
  // Re-resolve the endpoint each round: it may be closed (even destroyed)
  // while we are suspended, e.g. by an injected node crash.
  while (Endpoint* self = find(from)) {
    auto reply = co_await self->mailbox().get();
    if (!reply.has_value()) break;  // endpoint closed underneath us
    if (reply->token == token) {
      timer.cancel();
      co_return std::move(*reply);
    }
    IOC_WARN << "bus: endpoint " << from
             << " discarding out-of-band message " << reply->type()
             << " while awaiting token " << token;
  }
  timer.cancel();
  Message err;
  err.type_id = kMidErrClosed;
  err.token = token;
  co_return err;
}

const TrafficStats& BusIf::stats(TrafficClass c) const {
  return stats_[static_cast<int>(c)];
}

void BusIf::reset_stats() {
  for (auto& s : stats_) s = TrafficStats{};
  dropped_ = 0;
}

}  // namespace ioc::ev
