// Transport-agnostic bus contract. Everything the control plane needs from
// a message bus — endpoints with mailboxes, post, request/reply, traffic
// accounting, the fault-injection hook — lives here, so the *same*
// core::Container / protocol-FSM / GM-round translation units drive either
// transport, selected at composition time:
//
//   * ev::Bus (bus.h): the DES transport. Delivery pays the modeled
//     network cost on the virtual clock — the simulation mode every bench
//     and chaos soak runs in.
//   * svc::SocketBus (svc/socket_bus.h): the live transport. Delivery
//     serializes the message into a length-prefixed frame, writes it
//     through a real nonblocking kernel socket, and re-enqueues it into
//     the destination mailbox when the reactor reads it back.
//
// The endpoint table, token counter, traffic ledger, and the request/reply
// ladder are deliberately implemented *once*, in this base class: identical
// bookkeeping in both modes is what makes the DES-vs-socket equivalence
// test (tests/svc_test.cpp) meaningful. Only delivery itself — post() —
// and the clock/network accessors are transport-specific. See DESIGN.md
// §17 for the contract and its invariants.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "des/process.h"
#include "des/queue.h"
#include "ev/message.h"
#include "net/cluster.h"

namespace ioc::net {
class Network;
}

namespace ioc::ev {

/// Traffic classes for the accounting ledger.
enum class TrafficClass {
  kControl,    ///< manager-to-manager point-to-point control
  kMetadata,   ///< endpoint/contact metadata exchanges inside a container
  kMonitoring, ///< monitoring overlay samples
  kData,       ///< bulk data notifications (DataTap metadata pushes)
};
const char* traffic_class_name(TrafficClass c);

struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

// Synthetic reply types request() resolves to when no real reply can
// arrive. Callers distinguish them by interned id (kMidErr*); the strings
// remain the canonical spelling for logs and replay.
inline constexpr const char* kErrUnreachable = "ERROR/unreachable";
inline constexpr const char* kErrClosed = "ERROR/closed";
inline constexpr const char* kErrTimeout = "ERROR/timeout";
inline const MessageId kMidErrUnreachable = intern_type(kErrUnreachable);
inline const MessageId kMidErrClosed = intern_type(kErrClosed);
inline const MessageId kMidErrTimeout = intern_type(kErrTimeout);

/// Interception point for deterministic fault injection (src/fault). The
/// bus consults the installed hook once per delivery, after the transfer
/// cost has been paid — a dropped message still looks like a successful
/// send at the source, exactly as on a lossy fabric. The hook must be
/// deterministic given the event order (seeded RNG, no wall-clock).
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  struct Decision {
    bool drop = false;           ///< deliver nothing
    bool duplicate = false;      ///< deliver a second copy
    des::SimTime extra_delay = 0;  ///< added before delivery
  };
  virtual Decision on_post(net::NodeId src, net::NodeId dst,
                           const Message& m, TrafficClass cls) = 0;
};

class Endpoint {
 public:
  Endpoint(des::Simulator& sim, EndpointId id, net::NodeId node,
           std::string name)
      : id_(id), node_(node), name_(std::move(name)), mailbox_(sim) {}

  EndpointId id() const { return id_; }
  net::NodeId node() const { return node_; }
  const std::string& name() const { return name_; }
  des::Queue<Message>& mailbox() { return mailbox_; }

 private:
  EndpointId id_;
  net::NodeId node_;
  std::string name_;
  des::Queue<Message> mailbox_;
};

/// Abstract bus. Endpoint lifecycle, naming, the traffic ledger, and the
/// request/reply protocol are concrete and shared; delivery (post) is the
/// transport-specific hole. No transport #ifdefs exist anywhere in
/// src/core — a deployment picks its transport by constructing one of the
/// two implementations and handing it to Container::Env::bus.
class BusIf {
 public:
  virtual ~BusIf() = default;

  /// The simulator executing the control-plane coroutines. In DES mode it
  /// is the whole world; in live mode it is the single-threaded execution
  /// engine the svc::Reactor pumps between socket events.
  virtual des::Simulator& sim() const = 0;
  /// The modeled interconnect (data-plane streams and state migration cost
  /// it in both modes).
  virtual net::Network& network() const = 0;

  /// Deliver a message: transport-specific. Resolves true once the message
  /// reached the destination mailbox, false if the destination vanished.
  virtual des::Task<bool> post(EndpointId from, EndpointId to, Message m,
                               TrafficClass cls = TrafficClass::kControl) = 0;

  /// Transport quiescing hook for teardown: make progress on in-flight
  /// deliveries that the simulator alone cannot advance (frames sitting in
  /// kernel socket buffers). Returns true if progress was made or work
  /// remains; the DES transport has no such work and returns false.
  virtual bool pump_transport() { return false; }

  // --- endpoint table (shared across transports) -------------------------
  /// Create an endpoint on a node. Names are for diagnostics/lookup and need
  /// not be unique (replicas share a base name).
  Endpoint& open(net::NodeId node, std::string name);
  /// Drop an endpoint: closes its mailbox; late sends are counted and
  /// dropped.
  void close(EndpointId id);

  Endpoint* find(EndpointId id) {
    if (id == 0 || id > endpoints_.size()) return nullptr;
    return endpoints_[id - 1].get();
  }
  /// First live endpoint with the given name, or nullptr.
  Endpoint* find_by_name(const std::string& name);
  /// Every live endpoint currently placed on `node`.
  std::vector<EndpointId> endpoints_on(net::NodeId node) const;
  /// Close every endpoint on `node` — the bus-level effect of a node crash.
  /// Loops blocked on those mailboxes observe end-of-stream and finish.
  void close_node(net::NodeId node);

  /// Send `m` to `to` and suspend until a reply carrying the same token
  /// arrives in `from`'s mailbox. The caller owns the mailbox: no other
  /// receiver may consume from it concurrently. When `timeout` is positive
  /// and no reply arrives within it, resolves to a kErrTimeout message
  /// instead of blocking forever; the timeout timer is cancelled the moment
  /// a real reply lands, so it can never leak into a later exchange.
  /// Implemented once, on top of the virtual post() — both transports run
  /// the exact same request ladder.
  des::Task<Message> request(EndpointId from, EndpointId to, Message m,
                             TrafficClass cls = TrafficClass::kControl,
                             des::SimTime timeout = 0);

  std::uint64_t fresh_token() { return next_token_++; }

  /// Install (or clear, with nullptr) the fault-injection hook. The hook
  /// must outlive its installation window.
  void set_fault_hook(FaultHook* hook) { fault_ = hook; }
  FaultHook* fault_hook() const { return fault_; }

  const TrafficStats& stats(TrafficClass c) const;
  void reset_stats();
  std::uint64_t dropped() const { return dropped_; }
  /// Messages the fault hook silently dropped (not counted in dropped()).
  std::uint64_t injected_drops() const { return injected_drops_; }

 protected:
  // Endpoints indexed by id (id N lives at slot N-1); closed endpoints
  // leave a null tombstone so ids stay unique and find() stays O(1).
  // Iteration in slot order matches the id-ordered walk the former
  // std::map did, so name lookup and close_node order are unchanged.
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  EndpointId next_id_ = 1;
  std::uint64_t next_token_ = 1;
  TrafficStats stats_[4];
  std::uint64_t dropped_ = 0;
  std::uint64_t injected_drops_ = 0;
  FaultHook* fault_ = nullptr;
};

}  // namespace ioc::ev
