// EVPath-style "stones": a graph of lightweight handlers (filter, transform,
// fan-out, terminal sinks) that monitoring data flows through. The paper's
// monitoring layer builds dynamic overlays from exactly such pieces; here
// the graph is in-process and the bus carries data between nodes, while
// stones do the local processing steps.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

namespace ioc::ev {

using StoneId = std::uint32_t;

template <class T>
class StoneGraph {
 public:
  using Filter = std::function<bool(const T&)>;
  using Transform = std::function<std::optional<T>(const T&)>;
  using Sink = std::function<void(const T&)>;

  /// Pass-through stone that forwards to its links.
  StoneId add_split() { return add(Stone{}); }
  /// Forwards only events matching the predicate.
  StoneId add_filter(Filter f) {
    Stone s;
    s.filter = std::move(f);
    return add(std::move(s));
  }
  /// Maps each event; returning nullopt drops it.
  StoneId add_transform(Transform f) {
    Stone s;
    s.transform = std::move(f);
    return add(std::move(s));
  }
  /// Consumes events (graph leaf).
  StoneId add_terminal(Sink f) {
    Stone s;
    s.sink = std::move(f);
    return add(std::move(s));
  }

  void link(StoneId from, StoneId to) { stones_.at(from).out.push_back(to); }

  /// Inject an event at a stone; it propagates depth-first through links.
  void submit(StoneId at, const T& event) {
    auto& s = stones_.at(at);
    ++s.seen;
    if (s.filter && !s.filter(event)) return;
    const T* forward = &event;
    std::optional<T> transformed;
    if (s.transform) {
      transformed = s.transform(event);
      if (!transformed.has_value()) return;
      forward = &*transformed;
    }
    ++s.passed;
    if (s.sink) s.sink(*forward);
    for (StoneId next : s.out) submit(next, *forward);
  }

  std::uint64_t seen(StoneId id) const { return stones_.at(id).seen; }
  std::uint64_t passed(StoneId id) const { return stones_.at(id).passed; }
  std::size_t size() const { return stones_.size(); }

 private:
  struct Stone {
    Filter filter;
    Transform transform;
    Sink sink;
    std::vector<StoneId> out;
    std::uint64_t seen = 0;
    std::uint64_t passed = 0;
  };

  StoneId add(Stone s) {
    StoneId id = static_cast<StoneId>(stones_.size());
    stones_.emplace(id, std::move(s));
    return id;
  }

  std::map<StoneId, Stone> stones_;
};

}  // namespace ioc::ev
