#include "ev/bus.h"

#include "util/log.h"

namespace ioc::ev {

Bus::Bus(net::Network& network) : network_(&network) {}

des::Task<bool> Bus::post(EndpointId from, EndpointId to, Message m,
                          TrafficClass cls) {
  Endpoint* src = find(from);
  Endpoint* dst = find(to);
  if (src == nullptr || dst == nullptr) {
    ++dropped_;
    co_return false;
  }
  auto& st = stats_[static_cast<int>(cls)];
  ++st.messages;
  st.bytes += m.size_bytes;
  m.from = from;
  m.to = to;
  const net::NodeId src_node = src->node();
  const net::NodeId dst_node = dst->node();
  FaultHook::Decision fault;
  if (fault_ != nullptr) fault = fault_->on_post(src_node, dst_node, m, cls);
  // Network::transfer's protocol, folded inline so the message pays for one
  // coroutine frame instead of two. The await sequence (and therefore every
  // scheduled event's (t, seq)) is identical to calling transfer(); keep the
  // two in lockstep.
  auto& sim = network_->cluster().sim();
  network_->note_transfer(m.size_bytes);
  if (src_node == dst_node) {
    co_await des::delay(sim, network_->config().message_overhead);
  } else {
    const des::SimTime requested = sim.now();
    co_await network_->cluster().egress(src_node).acquire();
    co_await network_->cluster().ingress(dst_node).acquire();
    if (sim.now() != requested) {
      network_->note_contention(des::to_seconds(sim.now() - requested));
    }
    co_await des::delay(sim, network_->wire_time(m.size_bytes));
    network_->cluster().ingress(dst_node).release();
    network_->cluster().egress(src_node).release();
    co_await des::delay(sim, network_->wire_latency(src_node, dst_node));
  }
  if (fault.drop) {
    // A lossy-transport drop: the sender already paid the send cost and
    // believes the message left; nothing arrives. Recovery is the
    // receiver-side timeout + retry of whoever awaits the reply.
    ++injected_drops_;
    co_return true;
  }
  if (fault.extra_delay > 0) {
    co_await des::delay(sim, fault.extra_delay);
  }
  // The destination may have closed while the message was in flight.
  Endpoint* live = find(to);
  if (live == nullptr) {
    ++dropped_;
    co_return false;
  }
  if (fault.duplicate) {
    Message copy = m;
    live->mailbox().try_put(std::move(copy));
  }
  if (!live->mailbox().try_put(std::move(m))) {
    ++dropped_;
    co_return false;
  }
  co_return true;
}

}  // namespace ioc::ev
