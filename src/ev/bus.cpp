#include "ev/bus.h"

#include "util/log.h"

namespace ioc::ev {

const char* traffic_class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::kControl: return "control";
    case TrafficClass::kMetadata: return "metadata";
    case TrafficClass::kMonitoring: return "monitoring";
    case TrafficClass::kData: return "data";
  }
  return "?";
}

Bus::Bus(net::Network& network) : network_(&network) {}

Endpoint& Bus::open(net::NodeId node, std::string name) {
  EndpointId id = next_id_++;
  auto ep = std::make_unique<Endpoint>(sim(), id, node, std::move(name));
  Endpoint& ref = *ep;
  endpoints_.push_back(std::move(ep));  // id N lives at slot N-1
  return ref;
}

void Bus::close(EndpointId id) {
  Endpoint* ep = find(id);
  if (ep == nullptr) return;
  ep->mailbox().close();
  endpoints_[id - 1].reset();  // tombstone: the id is never reused
}

Endpoint* Bus::find_by_name(const std::string& name) {
  for (auto& ep : endpoints_) {
    if (ep != nullptr && ep->name() == name) return ep.get();
  }
  return nullptr;
}

std::vector<EndpointId> Bus::endpoints_on(net::NodeId node) const {
  std::vector<EndpointId> out;
  for (const auto& ep : endpoints_) {
    if (ep != nullptr && ep->node() == node) out.push_back(ep->id());
  }
  return out;
}

void Bus::close_node(net::NodeId node) {
  for (EndpointId id : endpoints_on(node)) close(id);
}

des::Task<bool> Bus::post(EndpointId from, EndpointId to, Message m,
                          TrafficClass cls) {
  Endpoint* src = find(from);
  Endpoint* dst = find(to);
  if (src == nullptr || dst == nullptr) {
    ++dropped_;
    co_return false;
  }
  auto& st = stats_[static_cast<int>(cls)];
  ++st.messages;
  st.bytes += m.size_bytes;
  m.from = from;
  m.to = to;
  const net::NodeId src_node = src->node();
  const net::NodeId dst_node = dst->node();
  FaultHook::Decision fault;
  if (fault_ != nullptr) fault = fault_->on_post(src_node, dst_node, m, cls);
  // Network::transfer's protocol, folded inline so the message pays for one
  // coroutine frame instead of two. The await sequence (and therefore every
  // scheduled event's (t, seq)) is identical to calling transfer(); keep the
  // two in lockstep.
  auto& sim = network_->cluster().sim();
  network_->note_transfer(m.size_bytes);
  if (src_node == dst_node) {
    co_await des::delay(sim, network_->config().message_overhead);
  } else {
    const des::SimTime requested = sim.now();
    co_await network_->cluster().egress(src_node).acquire();
    co_await network_->cluster().ingress(dst_node).acquire();
    if (sim.now() != requested) {
      network_->note_contention(des::to_seconds(sim.now() - requested));
    }
    co_await des::delay(sim, network_->wire_time(m.size_bytes));
    network_->cluster().ingress(dst_node).release();
    network_->cluster().egress(src_node).release();
    co_await des::delay(sim, network_->wire_latency(src_node, dst_node));
  }
  if (fault.drop) {
    // A lossy-transport drop: the sender already paid the send cost and
    // believes the message left; nothing arrives. Recovery is the
    // receiver-side timeout + retry of whoever awaits the reply.
    ++injected_drops_;
    co_return true;
  }
  if (fault.extra_delay > 0) {
    co_await des::delay(sim, fault.extra_delay);
  }
  // The destination may have closed while the message was in flight.
  Endpoint* live = find(to);
  if (live == nullptr) {
    ++dropped_;
    co_return false;
  }
  if (fault.duplicate) {
    Message copy = m;
    live->mailbox().try_put(std::move(copy));
  }
  if (!live->mailbox().try_put(std::move(m))) {
    ++dropped_;
    co_return false;
  }
  co_return true;
}

des::Task<Message> Bus::request(EndpointId from, EndpointId to, Message m,
                                TrafficClass cls, des::SimTime timeout) {
  if (m.token == 0) m.token = fresh_token();
  const std::uint64_t token = m.token;
  bool sent = co_await post(from, to, std::move(m), cls);
  if (!sent) {
    Message err;
    err.type_id = kMidErrUnreachable;
    err.token = token;
    co_return err;
  }
  des::Timer timer;
  if (timeout > 0) {
    timer = sim().timer_in(timeout, [this, from, token] {
      if (Endpoint* ep = find(from)) {
        Message t;
        t.type_id = kMidErrTimeout;
        t.token = token;
        ep->mailbox().try_put(std::move(t));
      }
    });
  }
  // Re-resolve the endpoint each round: it may be closed (even destroyed)
  // while we are suspended, e.g. by an injected node crash.
  while (Endpoint* self = find(from)) {
    auto reply = co_await self->mailbox().get();
    if (!reply.has_value()) break;  // endpoint closed underneath us
    if (reply->token == token) {
      timer.cancel();
      co_return std::move(*reply);
    }
    IOC_WARN << "bus: endpoint " << from
             << " discarding out-of-band message " << reply->type()
             << " while awaiting token " << token;
  }
  timer.cancel();
  Message err;
  err.type_id = kMidErrClosed;
  err.token = token;
  co_return err;
}

const TrafficStats& Bus::stats(TrafficClass c) const {
  return stats_[static_cast<int>(c)];
}

void Bus::reset_stats() {
  for (auto& s : stats_) s = TrafficStats{};
  dropped_ = 0;
}

}  // namespace ioc::ev
