// Small-buffer type-erased payload for ev::Message, replacing std::any.
// libstdc++'s std::any heap-allocates anything bigger than a pointer, which
// put one malloc/free pair on every control message carrying a payload
// struct. Payload keeps values up to kInlineBytes (48) in the message
// itself — every steady-state payload (HeartbeatWire, IncreasePayload,
// NeedsPayload, ...) fits — and falls back to the heap only for the rare
// large ones (DonePayload's report, TradeWire), which ride resize/trade
// rounds, not the hot path. See DESIGN.md §16 for the size budget.
//
// Semantics match the std::any subset the codebase used: copyable,
// movable, `p = value` to store, `as<T>()` (exact-type, typeid-based) to
// read, has_value()/reset().
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <typeinfo>
#include <utility>

namespace ioc::ev {

class Payload {
 public:
  /// Inline capacity. 48 bytes holds every steady-state control payload
  /// while keeping sizeof(Message) within a cache line pair.
  static constexpr std::size_t kInlineBytes = 48;
  static constexpr std::size_t kAlign = 16;

  Payload() = default;

  Payload(const Payload& o) { copy_from(o); }
  Payload(Payload&& o) noexcept { move_from(o); }

  Payload& operator=(const Payload& o) {
    if (this != &o) {
      reset();
      copy_from(o);
    }
    return *this;
  }
  Payload& operator=(Payload&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }

  /// Store a value (the `m.payload = SomeWireStruct{...}` idiom).
  template <class T, class D = std::decay_t<T>,
            class = std::enable_if_t<!std::is_same_v<D, Payload>>>
  Payload& operator=(T&& v) {
    reset();
    emplace<D>(std::forward<T>(v));
    return *this;
  }

  template <class T, class D = std::decay_t<T>,
            class = std::enable_if_t<!std::is_same_v<D, Payload>>>
  Payload(T&& v) {
    emplace<D>(std::forward<T>(v));
  }

  ~Payload() { reset(); }

  bool has_value() const { return vt_ != nullptr; }

  void reset() {
    if (vt_ == nullptr) return;
    if (!vt_->trivial) vt_->destroy(slot());
    vt_ = nullptr;
  }

  /// Pointer to the stored T, or nullptr if empty or a different type.
  template <class T>
  const T* as() const {
    if (vt_ == nullptr || *vt_->type != typeid(T)) return nullptr;
    return static_cast<const T*>(slot());
  }
  template <class T>
  T* as() {
    if (vt_ == nullptr || *vt_->type != typeid(T)) return nullptr;
    return static_cast<T*>(slot());
  }

  const std::type_info* type() const { return vt_ ? vt_->type : nullptr; }

 private:
  struct VTable {
    const std::type_info* type;
    bool inline_storage;
    /// Trivially copyable and inline: copy/move/destroy need no call at all
    /// — a fixed-size memcpy of the buffer suffices. Messages are moved
    /// several times per bus hop (into the post frame, into the mailbox
    /// ring, out of it), and every steady-state wire struct is trivial, so
    /// this flag removes an indirect call from each of those moves.
    bool trivial;
    // destroy/copy take the stored *object* (what slot() returns);
    // relocate shuffles raw storage between two Payloads.
    void (*destroy)(void* obj);
    void (*copy)(void* dst_storage, const void* src_obj);
    void (*relocate)(void* dst_storage, void* src_storage);
  };

  template <class T>
  static constexpr bool fits_inline() {
    return sizeof(T) <= kInlineBytes && alignof(T) <= kAlign &&
           std::is_nothrow_move_constructible_v<T>;
  }

  template <class T>
  static const VTable* vtable_for() {
    if constexpr (fits_inline<T>()) {
      static constexpr VTable vt = {
          &typeid(T), true,
          std::is_trivially_copyable_v<T>,
          [](void* p) { static_cast<T*>(p)->~T(); },
          [](void* dst, const void* src) {
            ::new (dst) T(*static_cast<const T*>(src));
          },
          [](void* dst, void* src) {
            T* s = static_cast<T*>(src);
            ::new (dst) T(std::move(*s));
            s->~T();
          }};
      return &vt;
    } else {
      static constexpr VTable vt = {
          &typeid(T), false, false,
          [](void* obj) { delete static_cast<T*>(obj); },
          [](void* dst, const void* src) {
            ::new (dst) (T*)(new T(*static_cast<const T*>(src)));
          },
          [](void* dst, void* src) {
            ::new (dst) (T*)(*static_cast<T**>(src));
          }};
      return &vt;
    }
  }

  template <class T, class... Args>
  void emplace(Args&&... args) {
    if constexpr (fits_inline<T>()) {
      ::new (static_cast<void*>(buf_)) T(std::forward<Args>(args)...);
    } else {
      ::new (static_cast<void*>(buf_)) (T*)(new T(std::forward<Args>(args)...));
    }
    vt_ = vtable_for<T>();
  }

  /// Address of the stored object (dereferences the heap pointer when the
  /// value lives out-of-line).
  void* slot() {
    return vt_ != nullptr && !vt_->inline_storage
               ? static_cast<void*>(*reinterpret_cast<void**>(buf_))
               : static_cast<void*>(buf_);
  }
  const void* slot() const { return const_cast<Payload*>(this)->slot(); }

  void copy_from(const Payload& o) {
    if (o.vt_ == nullptr) return;
    if (o.vt_->trivial) {
      std::memcpy(buf_, o.buf_, kInlineBytes);
    } else {
      o.vt_->copy(buf_, o.slot());
    }
    vt_ = o.vt_;
  }

  void move_from(Payload& o) noexcept {
    if (o.vt_ == nullptr) return;
    if (o.vt_->trivial) {
      std::memcpy(buf_, o.buf_, kInlineBytes);
    } else {
      o.vt_->relocate(buf_, o.buf_);
    }
    vt_ = o.vt_;
    o.vt_ = nullptr;
  }

  alignas(kAlign) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace ioc::ev
