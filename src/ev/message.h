// Control/monitoring message type carried by the EVPath-like bus. Payloads
// are passed by value through std::any (the simulation is single-process);
// what matters to the models is the on-the-wire size, carried explicitly.
#pragma once

#include <any>
#include <cstdint>
#include <string>

#include "net/cluster.h"

namespace ioc::ev {

using EndpointId = std::uint32_t;
inline constexpr EndpointId kInvalidEndpoint = static_cast<EndpointId>(-1);

struct Message {
  std::string type;                 ///< e.g. "INCREASE_REQ", "PAUSED"
  EndpointId from = kInvalidEndpoint;
  EndpointId to = kInvalidEndpoint;
  std::uint64_t token = 0;          ///< correlation id for request/reply
  std::uint64_t size_bytes = 256;   ///< control messages are small
  std::any payload;

  template <class T>
  const T* as() const {
    return std::any_cast<T>(&payload);
  }
};

}  // namespace ioc::ev
