// Control/monitoring message type carried by the EVPath-like bus. The type
// is an interned 16-bit id (ev/intern.h) — dispatch compares integers, and
// type() materializes the exact original string for logs and lint/verify
// replay. Payloads are passed by value through a small-buffer container
// (ev/payload.h): every steady-state payload struct lives inline in the
// message, so posting one allocates nothing. What matters to the models is
// the on-the-wire size, carried explicitly in size_bytes.
#pragma once

#include <cstdint>
#include <string_view>

#include "ev/intern.h"
#include "ev/payload.h"
#include "net/cluster.h"

namespace ioc::ev {

using EndpointId = std::uint32_t;
inline constexpr EndpointId kInvalidEndpoint = static_cast<EndpointId>(-1);

struct Message {
  MessageId type_id = kNoMessageId;  ///< e.g. id of "INCREASE_REQ"
  EndpointId from = kInvalidEndpoint;
  EndpointId to = kInvalidEndpoint;
  std::uint64_t token = 0;          ///< correlation id for request/reply
  std::uint64_t size_bytes = 256;   ///< control messages are small
  Payload payload;

  /// The type string, byte-identical to what was interned.
  std::string_view type() const { return type_name(type_id); }
  /// Set the type from a string (interned; prefer the pre-interned kMid*
  /// constants on hot paths).
  void set_type(std::string_view t) { type_id = intern_type(t); }

  template <class T>
  const T* as() const {
    return payload.as<T>();
  }
};

}  // namespace ioc::ev
