#include "ev/intern.h"

#include <cassert>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace ioc::ev {

namespace {

struct SvHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};
struct SvEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return a == b;
  }
};

// The canonical control-plane vocabulary, preregistered in this fixed order
// so every binary assigns the same ids no matter which TU interns first.
// These literals intentionally duplicate the kMsg*/kErr*/txn constants in
// ev/bus.h, core/protocol.h, txn/d2t_model.h and fed/wire.h — the
// intern-fidelity test (tests/intern_test.cpp) asserts each constant
// round-trips byte-identically, so drift fails CI rather than skewing ids.
constexpr std::string_view kCanonical[] = {
    // bus synthetic replies
    "ERROR/unreachable", "ERROR/closed", "ERROR/timeout",
    // core protocol (Fig. 3)
    "INCREASE_REQ", "DECREASE_REQ", "OFFLINE_REQ", "QUERY_NEEDS",
    "SWITCH_TO_DISK", "ACTIVATE_REQ", "DONE", "NEEDS", "REPLICA_HELLO",
    "REPLICA_CONFIG", "ENDPOINT_UPDATE", "METRIC", "ENABLE_HASHES",
    "HEARTBEAT", "ERROR/fenced",
    // D2T transaction rounds
    "TXN_BEGIN", "TXN_VOTE", "TXN_COMMIT", "TXN_ABORT", "TXN_BEGUN",
    "TXN_VOTE_YES", "TXN_VOTE_NO", "TXN_FINAL", "__txn_timeout__",
    // federation wire
    "TRADE_REQ",
};

struct Table {
  // Deque keeps the backing bytes pointer-stable across growth, so the
  // views handed out by type_name() never dangle.
  std::deque<std::string> strings;
  std::vector<std::string_view> views;
  std::unordered_map<std::string_view, MessageId, SvHash, SvEq> ids;

  Table() {
    add("");  // id 0 <=> unset type
    for (std::string_view s : kCanonical) add(s);
  }

  MessageId add(std::string_view s) {
    const MessageId id = static_cast<MessageId>(views.size());
    strings.emplace_back(s);
    views.push_back(strings.back());
    ids.emplace(views.back(), id);
    return id;
  }
};

Table& table() {
  static Table t;
  return t;
}

}  // namespace

MessageId intern_type(std::string_view s) {
  Table& t = table();
  auto it = t.ids.find(s);
  if (it != t.ids.end()) return it->second;
  // 16 bits is deliberate head-room policing: the control plane has a few
  // dozen type strings, so running into the cap means someone is interning
  // unbounded data (e.g. a per-instance name) as a message type.
  assert(t.views.size() < 65535 && "message-type intern table overflow");
  return t.add(s);
}

std::string_view type_name(MessageId id) {
  Table& t = table();
  if (id >= t.views.size()) return {};
  return t.views[id];
}

std::size_t type_count() { return table().views.size(); }

}  // namespace ioc::ev
